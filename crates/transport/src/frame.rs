//! The length-framed message layer: `[u32_le length][u8 kind][payload]`.
//!
//! `length` counts the kind byte plus the payload, so a frame is complete
//! exactly when `length` bytes follow the 4-byte header. The reader
//! distinguishes a *clean* close (EOF on a frame boundary) from a *torn*
//! frame (EOF mid-header or mid-body): the first is how a worker says
//! goodbye, the second is a fault that kills the connection. Oversized
//! length prefixes are rejected before any body byte is read — a malicious
//! or corrupt header cannot make the server allocate unbounded memory.

use std::io::{self, Read, Write};

/// Hard bound on a frame's declared length (kind byte + payload).
///
/// Sized so the largest legal wire message still fits: the codec caps any
/// length-prefixed field at 64 Mi *elements* ([`MAX_FIELD_LEN`]
/// (fleet_server::wire::MAX_FIELD_LEN)), and the widest element is the 4-byte
/// `f32` of a parameter vector — 256 MiB — plus headroom for the fixed
/// fields around it. Anything larger is a corrupt or hostile header.
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024 + 4096;

/// What a frame carries. Kinds 1–4 travel worker→server, 5–8 server→worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A wire-encoded `TaskRequest` (step 1).
    Request = 1,
    /// A wire-encoded `TaskResult` (step 5).
    Result = 2,
    /// An empty status probe; answered with [`FrameKind::StatusReply`].
    Status = 3,
    /// A drain request: the server sets its draining flag (the embedding
    /// process decides when to actually stop) and answers with a
    /// [`FrameKind::StatusReply`].
    Shutdown = 4,
    /// A wire-encoded `TaskResponse` (steps 2–4).
    Response = 5,
    /// A wire-encoded `ResultAck`.
    Ack = 6,
    /// An encoded [`ServerStatus`].
    StatusReply = 7,
    /// A UTF-8 diagnostic; the sender closes the connection right after.
    Error = 8,
}

impl FrameKind {
    /// The kind's on-wire byte.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Parses an on-wire kind byte.
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Result),
            3 => Some(FrameKind::Status),
            4 => Some(FrameKind::Shutdown),
            5 => Some(FrameKind::Response),
            6 => Some(FrameKind::Ack),
            7 => Some(FrameKind::StatusReply),
            8 => Some(FrameKind::Error),
            _ => None,
        }
    }
}

/// Why a frame could not be read (or written).
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection on a frame boundary — a clean goodbye.
    Closed,
    /// EOF in the middle of a header or body: the peer died mid-send.
    Torn {
        /// Bytes the current unit (header or body) still needed.
        expected: usize,
        /// Bytes actually received before the EOF.
        got: usize,
    },
    /// The header declared a length over the configured bound; nothing of
    /// the body was read.
    TooLarge(usize),
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// The frame is structurally invalid (e.g. zero length — even an empty
    /// payload needs its kind byte).
    Malformed(&'static str),
    /// The underlying socket failed (including read-deadline expiry, which
    /// surfaces as `TimedOut`/`WouldBlock`).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed on a frame boundary"),
            FrameError::Torn { expected, got } => {
                write!(f, "torn frame: got {got} of {expected} bytes before EOF")
            }
            FrameError::TooLarge(len) => write!(f, "frame length {len} exceeds the bound"),
            FrameError::UnknownKind(byte) => write!(f, "unknown frame kind {byte}"),
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
            FrameError::Io(err) => write!(f, "socket error: {err}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        FrameError::Io(err)
    }
}

/// Reads as many bytes as possible into `buf`, stopping at EOF. Returns the
/// number of bytes read; errors other than `Interrupted` abort.
fn read_until_eof(reader: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
    Ok(filled)
}

/// Reads one frame.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean EOF between frames; [`FrameError::Torn`]
/// on EOF inside one; [`FrameError::TooLarge`] when the header declares more
/// than `max_len` bytes (the body is left unread); [`FrameError::UnknownKind`]
/// and [`FrameError::Malformed`] on structural garbage; [`FrameError::Io`] on
/// socket failure or deadline expiry.
pub fn read_frame(
    reader: &mut impl Read,
    max_len: usize,
) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let mut header = [0u8; 4];
    let got = read_until_eof(reader, &mut header)?;
    if got == 0 {
        return Err(FrameError::Closed);
    }
    if got < header.len() {
        return Err(FrameError::Torn {
            expected: header.len(),
            got,
        });
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(FrameError::Malformed("zero-length frame has no kind byte"));
    }
    if len > max_len {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    let got = read_until_eof(reader, &mut body)?;
    if got < len {
        return Err(FrameError::Torn { expected: len, got });
    }
    let payload = body.split_off(1);
    match FrameKind::from_byte(body[0]) {
        Some(kind) => Ok((kind, payload)),
        None => Err(FrameError::UnknownKind(body[0])),
    }
}

/// Writes one frame (header, kind and payload in a single buffered write)
/// and flushes.
///
/// # Errors
///
/// `InvalidInput` when the payload would exceed [`MAX_FRAME_LEN`] — the peer
/// could never accept it — or whatever the socket reports.
pub fn write_frame(writer: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() + 1;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"),
        ));
    }
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(kind.as_byte());
    buf.extend_from_slice(payload);
    writer.write_all(&buf)?;
    writer.flush()
}

/// A snapshot of the server's progress, answered to [`FrameKind::Status`]
/// probes. The multi-process demo gates each worker's turn on `steps`; a
/// monitoring client watches `outstanding` and `draining`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatus {
    /// Completed protocol steps: applied results plus terminal (non-overload)
    /// rejections. Overload rejections do *not* count — the shed worker still
    /// owes its exchange.
    pub steps: u64,
    /// The core server's logical clock.
    pub clock: u64,
    /// Outstanding task leases.
    pub outstanding: u64,
    /// Whether a drain has been requested.
    pub draining: bool,
}

/// Encodes a [`ServerStatus`] into a `StatusReply` payload.
pub fn encode_status(status: &ServerStatus) -> Vec<u8> {
    let mut buf = Vec::with_capacity(25);
    buf.extend_from_slice(&status.steps.to_le_bytes());
    buf.extend_from_slice(&status.clock.to_le_bytes());
    buf.extend_from_slice(&status.outstanding.to_le_bytes());
    buf.push(status.draining as u8);
    buf
}

/// Decodes a [`ServerStatus`] from a `StatusReply` payload.
///
/// # Errors
///
/// [`FrameError::Malformed`] when the payload is not exactly the encoded
/// shape.
pub fn decode_status(payload: &[u8]) -> Result<ServerStatus, FrameError> {
    if payload.len() != 25 {
        return Err(FrameError::Malformed("status payload must be 25 bytes"));
    }
    let u64_at = |i: usize| {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&payload[i..i + 8]);
        u64::from_le_bytes(raw)
    };
    let draining = match payload[24] {
        0 => false,
        1 => true,
        _ => return Err(FrameError::Malformed("draining flag must be 0 or 1")),
    };
    Ok(ServerStatus {
        steps: u64_at(0),
        clock: u64_at(8),
        outstanding: u64_at(16),
        draining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrips_through_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"hello").unwrap();
        write_frame(&mut wire, FrameKind::Status, b"").unwrap();
        let mut cursor = Cursor::new(wire);
        let (kind, payload) = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(payload, b"hello");
        let (kind, payload) = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
        assert_eq!(kind, FrameKind::Status);
        assert!(payload.is_empty());
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_LEN),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn every_proper_prefix_is_torn_or_closed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Result, &[7; 13]).unwrap();
        for cut in 0..wire.len() {
            let mut cursor = Cursor::new(&wire[..cut]);
            let err = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap_err();
            if cut == 0 {
                assert!(matches!(err, FrameError::Closed), "cut 0 → {err:?}");
            } else {
                assert!(
                    matches!(err, FrameError::Torn { .. }),
                    "cut {cut} → {err:?}"
                );
            }
        }
    }

    #[test]
    fn oversized_and_zero_length_headers_are_rejected_without_reading_bodies() {
        let mut wire = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        wire.push(FrameKind::Request.as_byte());
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_LEN),
            Err(FrameError::TooLarge(_))
        ));
        // The reader must not have consumed the declared body.
        assert_eq!(cursor.position(), 4);

        let mut cursor = Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_LEN),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_kind_bytes_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.push(200); // no such kind
        wire.push(0);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire), MAX_FRAME_LEN),
            Err(FrameError::UnknownKind(200))
        ));
    }

    #[test]
    fn writer_refuses_payloads_over_the_bound() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Declared length is payload + kind byte, so exactly MAX_FRAME_LEN
        // payload bytes already overflow.
        let err =
            write_frame(&mut NullSink, FrameKind::Result, &vec![0u8; MAX_FRAME_LEN]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn kind_bytes_roundtrip() {
        for kind in [
            FrameKind::Request,
            FrameKind::Result,
            FrameKind::Status,
            FrameKind::Shutdown,
            FrameKind::Response,
            FrameKind::Ack,
            FrameKind::StatusReply,
            FrameKind::Error,
        ] {
            assert_eq!(FrameKind::from_byte(kind.as_byte()), Some(kind));
        }
        assert_eq!(FrameKind::from_byte(0), None);
        assert_eq!(FrameKind::from_byte(9), None);
    }

    #[test]
    fn status_roundtrips_and_rejects_malformed_payloads() {
        let status = ServerStatus {
            steps: 41,
            clock: 12,
            outstanding: 3,
            draining: true,
        };
        let encoded = encode_status(&status);
        assert_eq!(decode_status(&encoded).unwrap(), status);
        assert!(decode_status(&encoded[..24]).is_err());
        let mut bad = encoded.clone();
        bad[24] = 7;
        assert!(decode_status(&bad).is_err());
    }
}
