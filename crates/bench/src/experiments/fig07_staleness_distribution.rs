//! Figure 7: the staleness distribution induced by exponential round-trip
//! latencies over bursty task arrivals — a Gaussian body with a long tail.

use crate::{ExperimentWriter, Scale};
use fleet_device::network::RoundTripModel;
use fleet_server::staleness_model::{bursty_start_times, histogram, staleness_from_timestamps};

/// Generates task arrivals, samples round-trip latencies with the paper's
/// exponential model (min 7.1 s, mean 8.45 s) and reports the staleness
/// histogram.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig07_staleness_distribution");
    out.comment("Figure 7: staleness distribution (Gaussian body + long tail from peak hours)");

    let tasks = scale.pick(5_000, 50_000);
    let starts = bursty_start_times(tasks, 1.0, 30.0, 12, 400);
    let mut round_trip = RoundTripModel::paper_defaults(29);
    let staleness = staleness_from_timestamps(&starts, &mut round_trip);

    let max_bin = 300;
    let bins = histogram(&staleness, max_bin);
    out.row("staleness,probability");
    for (tau, p) in bins.iter().enumerate() {
        if *p > 0.0 {
            out.row(format!("{tau},{p:.6}"));
        }
    }
    let mean = staleness.iter().sum::<u64>() as f64 / staleness.len().max(1) as f64;
    let max = staleness.iter().max().copied().unwrap_or(0);
    out.comment(format!(
        "mean={mean:.2} max={max} (paper: Gaussian body below ~65, long tail up to ~300)"
    ));
    out.finish();
}
