//! The gradient-weighting algorithms compared in the paper.
//!
//! An [`Aggregator`] decides the scalar weight applied to each incoming
//! worker gradient before it is added to the model (Eq. 3). The four
//! implementations correspond to the four lines of Figures 8–11:
//!
//! | Aggregator | Dampening | Similarity boost | Staleness-aware |
//! |---|---|---|---|
//! | [`AdaSgd`]  | exponential `e^{−βτ}` | yes | yes |
//! | [`DynSgd`]  | inverse `1/(τ+1)`     | no  | yes |
//! | [`FedAvg`]  | none                  | no  | no  |
//! | [`Ssgd`]    | none (staleness is always 0) | no | n/a |

use crate::dampening::DampeningPolicy;
use crate::staleness::StalenessTracker;
use crate::update::WorkerUpdate;
use fleet_data::GlobalLabelDistribution;

/// The mutable state of an [`Aggregator`], exported as plain data for
/// checkpoint/restore. Stateless aggregators (DynSGD, FedAvg, SSGD) export
/// empty vectors; AdaSGD exports its staleness window and the accumulated
/// global label counts — everything `Λ(τ)` calibration and similarity
/// boosting depend on. The byte encoding lives with the wire codec
/// (`fleet-server`); this struct keeps the crates below it codec-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AggregatorState {
    /// Observed staleness values, in observation order.
    pub staleness_values: Vec<u64>,
    /// Accumulated per-class sample counts of the global label distribution.
    pub label_counts: Vec<u64>,
}

/// Decides the weight of each worker gradient and observes applied updates.
pub trait Aggregator: std::fmt::Debug + Send {
    /// Short human-readable name (used by the experiment harnesses).
    fn name(&self) -> &'static str;

    /// Exports the aggregator's mutable state (see [`AggregatorState`]).
    /// Stateless aggregators use this default.
    fn export_state(&self) -> AggregatorState {
        AggregatorState::default()
    }

    /// Restores state captured with [`Aggregator::export_state`] into an
    /// aggregator constructed with the same parameters. Stateless
    /// aggregators ignore it.
    fn import_state(&mut self, _state: AggregatorState) {}

    /// The scalar weight for an incoming update, in `[0, 1]`, at the
    /// staleness the update itself carries.
    fn scaling_factor(&self, update: &WorkerUpdate) -> f64 {
        self.scaling_factor_at(update, update.staleness)
    }

    /// The weight for `update` evaluated at an explicit `staleness` instead
    /// of the one the update carries. This is the per-shard entry point: a
    /// server in [`crate::server::ApplyMode::PerShard`] attributes a
    /// different staleness `τ_s` to each shard slice of one gradient (vector
    /// clock semantics) and weights every slice with
    /// `scaling_factor_at(update, τ_s)` — same Eq. 3, per shard.
    fn scaling_factor_at(&self, update: &WorkerUpdate, staleness: u64) -> f64;

    /// Records that `update` has been applied to the model, letting the
    /// aggregator refresh its staleness statistics and global label
    /// distribution.
    fn record(&mut self, update: &WorkerUpdate);
}

/// AdaSGD (§2.3): exponential staleness dampening calibrated from the
/// expected percentage of non-stragglers, plus similarity-based boosting.
/// Lower bound on the similarity used for boosting, preventing an unbounded
/// boost when the label overlap is exactly zero.
const MIN_SIMILARITY: f64 = 1e-4;

#[derive(Debug)]
pub struct AdaSgd {
    staleness: StalenessTracker,
    global_labels: GlobalLabelDistribution,
    s_percentile: f64,
    fallback_tau_thres: u64,
    fixed_tau_thres: Option<u64>,
    boost_enabled: bool,
}

impl AdaSgd {
    /// Creates an AdaSGD aggregator for `num_classes` classes with the
    /// expected percentage of non-stragglers `s_percentile` (e.g. 99.7).
    ///
    /// # Panics
    ///
    /// Panics if `s_percentile` is outside `(0, 100]` or `num_classes` is zero.
    pub fn new(num_classes: usize, s_percentile: f64) -> Self {
        assert!(
            s_percentile > 0.0 && s_percentile <= 100.0,
            "s_percentile must be in (0, 100]"
        );
        Self {
            staleness: StalenessTracker::new(32),
            global_labels: GlobalLabelDistribution::new(num_classes),
            s_percentile,
            fallback_tau_thres: 12,
            fixed_tau_thres: None,
            boost_enabled: true,
        }
    }

    /// Disables the similarity-based boosting (ablation used in Fig. 9 and
    /// offered by the paper when the label-distribution transfer is considered
    /// a privacy concern, §5).
    pub fn without_similarity_boost(mut self) -> Self {
        self.boost_enabled = false;
        self
    }

    /// Sets the `τ_thres` used before enough staleness values were observed.
    pub fn with_fallback_tau_thres(mut self, tau_thres: u64) -> Self {
        self.fallback_tau_thres = tau_thres.max(1);
        self
    }

    /// Pins `τ_thres` to a fixed value instead of estimating it from observed
    /// staleness. The paper does this in the long-tail experiment of Fig. 9,
    /// where τ_thres is taken from the D1 distribution (12) even though the
    /// injected stragglers would otherwise dominate the percentile.
    pub fn with_fixed_tau_thres(mut self, tau_thres: u64) -> Self {
        self.fixed_tau_thres = Some(tau_thres.max(1));
        self
    }

    /// The current `τ_thres` estimate (s-th percentile of observed staleness,
    /// unless pinned with [`AdaSgd::with_fixed_tau_thres`]).
    pub fn tau_thres(&self) -> u64 {
        self.fixed_tau_thres.unwrap_or_else(|| {
            self.staleness
                .tau_thres(self.s_percentile, self.fallback_tau_thres)
        })
    }

    /// The dampening policy currently in force: DynSGD's inverse function
    /// during the bootstrap phase (as the paper suggests), the calibrated
    /// exponential afterwards. A pinned `τ_thres` skips the bootstrap.
    pub fn current_policy(&self) -> DampeningPolicy {
        if self.fixed_tau_thres.is_none() && self.staleness.is_bootstrapping() {
            DampeningPolicy::Inverse
        } else {
            DampeningPolicy::exponential_for(self.tau_thres())
        }
    }

    /// The similarity of an update's label distribution with the global one.
    pub fn similarity(&self, update: &WorkerUpdate) -> f64 {
        self.similarity_of(&update.label_distribution)
    }

    /// The similarity of an arbitrary label distribution with the global one
    /// (step 3 of the protocol: computed at request time, before the gradient
    /// exists).
    pub fn similarity_of(&self, label_distribution: &fleet_data::LabelDistribution) -> f64 {
        f64::from(self.global_labels.similarity(label_distribution))
    }
}

impl Aggregator for AdaSgd {
    fn name(&self) -> &'static str {
        "AdaSGD"
    }

    fn export_state(&self) -> AggregatorState {
        AggregatorState {
            staleness_values: self.staleness.values().to_vec(),
            label_counts: self.global_labels.counts().to_vec(),
        }
    }

    fn import_state(&mut self, state: AggregatorState) {
        self.staleness.restore_values(state.staleness_values);
        let num_classes = self.global_labels.counts().len();
        self.global_labels = GlobalLabelDistribution::new(num_classes);
        for (class, &count) in state.label_counts.iter().enumerate() {
            self.global_labels.record(class, count);
        }
    }

    fn scaling_factor_at(&self, update: &WorkerUpdate, staleness: u64) -> f64 {
        let dampening = self.current_policy().factor(staleness);
        let weight = if self.boost_enabled {
            let sim = self.similarity(update).max(MIN_SIMILARITY);
            dampening / sim
        } else {
            dampening
        };
        weight.min(1.0)
    }

    fn record(&mut self, update: &WorkerUpdate) {
        self.staleness.record(update.staleness);
        // The server only sees label indices and counts (§2.3); recording the
        // label distribution scaled by the mini-batch size reproduces the
        // "aggregate number of previously used samples per label".
        for class in 0..update.label_distribution.num_classes() {
            let share = update.label_distribution.probability(class);
            let count = (share * update.num_samples as f32).round() as u64;
            self.global_labels.record(class, count);
        }
    }
}

/// DynSGD (Jiang et al., SIGMOD'17): inverse staleness dampening, no
/// similarity boosting.
#[derive(Debug, Default)]
pub struct DynSgd;

impl DynSgd {
    /// Creates a DynSGD aggregator.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for DynSgd {
    fn name(&self) -> &'static str {
        "DynSGD"
    }

    fn scaling_factor_at(&self, _update: &WorkerUpdate, staleness: u64) -> f64 {
        DampeningPolicy::Inverse.factor(staleness)
    }

    fn record(&mut self, _update: &WorkerUpdate) {}
}

/// FedAvg-style staleness-unaware aggregation: every gradient is applied with
/// full weight regardless of its staleness (the behaviour shown to diverge in
/// Figures 8 and 10).
#[derive(Debug, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Creates a FedAvg aggregator.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn scaling_factor_at(&self, _update: &WorkerUpdate, _staleness: u64) -> f64 {
        1.0
    }

    fn record(&mut self, _update: &WorkerUpdate) {}
}

/// Synchronous SGD: the staleness-free ideal. The weight is 1, and callers
/// are expected to only feed it updates with zero staleness (the
/// [`crate::server::ParameterServer`] enforces nothing — SSGD is a *protocol*
/// choice, not a weighting choice).
#[derive(Debug, Default)]
pub struct Ssgd;

impl Ssgd {
    /// Creates an SSGD aggregator.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for Ssgd {
    fn name(&self) -> &'static str {
        "SSGD"
    }

    fn scaling_factor_at(&self, _update: &WorkerUpdate, _staleness: u64) -> f64 {
        1.0
    }

    fn record(&mut self, _update: &WorkerUpdate) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_data::LabelDistribution;
    use fleet_ml::Gradient;

    fn update(staleness: u64, labels: &[usize], classes: usize) -> WorkerUpdate {
        WorkerUpdate::new(
            Gradient::from_vec(vec![0.1; 4]),
            staleness,
            LabelDistribution::from_labels(labels, classes),
            labels.len().max(1),
            1,
        )
    }

    #[test]
    fn fresh_updates_get_full_weight_everywhere() {
        let ada = AdaSgd::new(10, 99.7);
        let dyn_ = DynSgd::new();
        let fed = FedAvg::new();
        let ssgd = Ssgd::new();
        let u = update(0, &[0, 1, 2], 10);
        for agg in [&ada as &dyn Aggregator, &dyn_, &fed, &ssgd] {
            assert!(
                (agg.scaling_factor(&u) - 1.0).abs() < 1e-9,
                "{}",
                agg.name()
            );
        }
    }

    #[test]
    fn fedavg_ignores_staleness() {
        let fed = FedAvg::new();
        assert_eq!(fed.scaling_factor(&update(1000, &[0], 10)), 1.0);
    }

    #[test]
    fn dynsgd_uses_inverse_dampening() {
        let dyn_ = DynSgd::new();
        assert!((dyn_.scaling_factor(&update(9, &[0], 10)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn adasgd_bootstraps_with_inverse_then_switches_to_exponential() {
        let mut ada = AdaSgd::new(10, 99.7);
        assert_eq!(ada.current_policy(), DampeningPolicy::Inverse);
        // Feed enough staleness observations to finish bootstrapping.
        for _ in 0..32 {
            ada.record(&update(6, &[0, 1], 10));
        }
        match ada.current_policy() {
            DampeningPolicy::Exponential { beta } => assert!(beta > 0.0),
            other => panic!("expected exponential policy, got {other:?}"),
        }
        assert_eq!(ada.tau_thres(), 6);
    }

    #[test]
    fn adasgd_dampens_very_stale_updates_more_than_dynsgd() {
        let mut ada = AdaSgd::new(10, 99.7);
        // Calibrate tau_thres to 12, using updates whose labels make the
        // global distribution uniform (so similarity boosting stays neutral).
        let all_labels: Vec<usize> = (0..10).collect();
        for _ in 0..40 {
            ada.record(&update(12, &all_labels, 10));
        }
        let dyn_ = DynSgd::new();
        let stale = update(48, &all_labels, 10);
        assert!(ada.scaling_factor(&stale) < dyn_.scaling_factor(&stale));
    }

    #[test]
    fn similarity_boost_raises_weight_for_novel_labels() {
        // Reproduces the Fig. 5/9 scenario: the global distribution has never
        // seen class 0, so a straggler carrying class-0 data is boosted.
        let mut ada = AdaSgd::new(10, 99.7);
        let seen: Vec<usize> = (1..10).collect();
        for _ in 0..40 {
            ada.record(&update(12, &seen, 10));
        }
        let stale_novel = update(48, &[0, 0, 0], 10);
        let stale_seen = update(48, &seen, 10);
        let boosted = ada.scaling_factor(&stale_novel);
        let unboosted = ada.scaling_factor(&stale_seen);
        assert!(
            boosted > unboosted,
            "novel-label update ({boosted}) should outweigh seen-label update ({unboosted})"
        );

        // Without boosting both get the same (tiny) weight.
        let mut plain = AdaSgd::new(10, 99.7).without_similarity_boost();
        for _ in 0..40 {
            plain.record(&update(12, &seen, 10));
        }
        assert!(
            (plain.scaling_factor(&stale_novel) - plain.scaling_factor(&stale_seen)).abs() < 1e-12
        );
    }

    #[test]
    fn scaling_factor_never_exceeds_one() {
        let mut ada = AdaSgd::new(4, 99.7);
        for _ in 0..40 {
            ada.record(&update(3, &[1, 2], 4));
        }
        // Extremely dissimilar update with low staleness: boost is capped at 1.
        let u = update(0, &[0], 4);
        assert!(ada.scaling_factor(&u) <= 1.0);
    }

    #[test]
    fn fallback_tau_thres_is_used_before_observations() {
        let ada = AdaSgd::new(10, 99.7).with_fallback_tau_thres(20);
        assert_eq!(ada.tau_thres(), 20);
    }

    #[test]
    fn scaling_factor_at_matches_the_carried_staleness() {
        // The per-shard entry point evaluated at the update's own staleness
        // must be exactly the scalar path — the lockstep/per-shard
        // equivalence (no clock divergence => identical weights) rests on it.
        let mut ada = AdaSgd::new(10, 99.7);
        for _ in 0..40 {
            ada.record(&update(12, &[0, 1], 10));
        }
        let u = update(48, &[0, 1], 10);
        for agg in [
            &ada as &dyn Aggregator,
            &DynSgd::new(),
            &FedAvg::new(),
            &Ssgd::new(),
        ] {
            assert_eq!(
                agg.scaling_factor(&u).to_bits(),
                agg.scaling_factor_at(&u, 48).to_bits(),
                "{}",
                agg.name()
            );
        }
        // And a larger per-shard staleness dampens more (for the aware ones).
        assert!(ada.scaling_factor_at(&u, 96) < ada.scaling_factor_at(&u, 48));
        assert!((DynSgd::new().scaling_factor_at(&u, 9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            AdaSgd::new(2, 99.0).name(),
            DynSgd::new().name(),
            FedAvg::new().name(),
            Ssgd::new().name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
