//! Offline calibration-data collection.
//!
//! The paper bootstraps both I-Prof's cold-start model and MAUI by running
//! learning tasks of increasing mini-batch size on a set of *training* devices
//! (disjoint from the test devices) until the computation time reaches twice
//! the SLO, recording the device features of each task (§3.3). This module
//! reproduces that procedure against the device simulator.

use crate::iprof::IProf;
use crate::maui::Maui;
use crate::slo::Slo;
use fleet_device::{Device, DeviceFeatures, DeviceProfile};

/// One calibration observation collected on a training device.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSample {
    /// Device model the sample was collected on.
    pub device_model: String,
    /// Observable device state at request time.
    pub features: DeviceFeatures,
    /// Mini-batch size of the task.
    pub batch_size: usize,
    /// Measured computation time in seconds.
    pub computation_seconds: f32,
    /// Measured energy in percent of battery.
    pub energy_pct: f32,
}

impl CalibrationSample {
    /// Seconds per sample.
    pub fn latency_slope(&self) -> f32 {
        self.computation_seconds / self.batch_size.max(1) as f32
    }

    /// Battery percent per sample.
    pub fn energy_slope(&self) -> f32 {
        self.energy_pct / self.batch_size.max(1) as f32
    }
}

/// Runs the calibration procedure on a set of training-device profiles:
/// batch sizes grow geometrically from `start_batch` until the measured
/// computation time exceeds twice the latency SLO (or `max_steps` tasks ran).
pub fn collect_calibration(
    profiles: &[DeviceProfile],
    slo: Slo,
    start_batch: usize,
    max_steps: usize,
    seed: u64,
) -> Vec<CalibrationSample> {
    let latency_cap = slo.computation_seconds.unwrap_or(3.0) * 2.0;
    let mut out = Vec::new();
    for (i, profile) in profiles.iter().enumerate() {
        let mut device = Device::new(profile.clone(), seed.wrapping_add(i as u64));
        let mut batch = start_batch.max(1);
        for _ in 0..max_steps {
            let features = device.features();
            let exec = device.execute_task(batch);
            out.push(CalibrationSample {
                device_model: profile.name.clone(),
                features,
                batch_size: batch,
                computation_seconds: exec.computation_seconds,
                energy_pct: exec.energy_pct,
            });
            if exec.computation_seconds >= latency_cap {
                break;
            }
            batch = (batch as f32 * 1.6).ceil() as usize;
            device.idle(30.0);
        }
    }
    out
}

/// Builds an [`IProf`] pre-trained on the given calibration samples.
pub fn pretrained_iprof(slo: Slo, samples: &[CalibrationSample]) -> IProf {
    let mut iprof = IProf::new(slo);
    let latency: Vec<(Vec<f32>, f32)> = samples
        .iter()
        .map(|s| (s.features.latency_features(), s.latency_slope()))
        .collect();
    let energy: Vec<(Vec<f32>, f32)> = samples
        .iter()
        .map(|s| (s.features.energy_features(), s.energy_slope()))
        .collect();
    iprof.pretrain_latency(&latency);
    iprof.pretrain_energy(&energy);
    iprof
}

/// Builds a [`Maui`] baseline pre-trained on the given calibration samples.
pub fn pretrained_maui(slo: Slo, samples: &[CalibrationSample]) -> Maui {
    let mut maui = Maui::new(slo);
    let latency: Vec<(usize, f32)> = samples
        .iter()
        .map(|s| (s.batch_size, s.computation_seconds))
        .collect();
    let energy: Vec<(usize, f32)> = samples
        .iter()
        .map(|s| (s.batch_size, s.energy_pct))
        .collect();
    maui.pretrain_latency(&latency);
    maui.pretrain_energy(&energy);
    maui
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadProfiler;
    use fleet_device::profile::{by_name, catalogue};

    fn training_profiles() -> Vec<DeviceProfile> {
        catalogue().into_iter().take(8).collect()
    }

    #[test]
    fn calibration_stops_at_twice_the_slo() {
        let samples = collect_calibration(&training_profiles(), Slo::latency(3.0), 8, 40, 1);
        assert!(!samples.is_empty());
        // Every device contributed samples, and the last sample per device is
        // around or above 2x the SLO (or the step limit was hit).
        for p in training_profiles() {
            let per_device: Vec<&CalibrationSample> = samples
                .iter()
                .filter(|s| s.device_model == p.name)
                .collect();
            assert!(!per_device.is_empty(), "{} missing", p.name);
            let last = per_device.last().unwrap();
            assert!(
                last.computation_seconds >= 6.0 || per_device.len() == 40,
                "{} stopped early at {}s",
                p.name,
                last.computation_seconds
            );
        }
    }

    #[test]
    fn calibration_batches_grow() {
        let samples = collect_calibration(
            &[by_name("Galaxy S7").unwrap()],
            Slo::latency(3.0),
            8,
            40,
            2,
        );
        for w in samples.windows(2) {
            assert!(w[1].batch_size > w[0].batch_size);
        }
    }

    #[test]
    fn pretrained_iprof_beats_pretrained_maui_on_unseen_heterogeneous_devices() {
        // The essence of Fig. 12: with heterogeneous devices, a single global
        // batch-size model (MAUI) cannot fit everyone, while I-Prof's
        // feature-based model can.
        let slo = Slo::latency(3.0);
        let samples = collect_calibration(&training_profiles(), slo, 8, 40, 3);
        let mut iprof = pretrained_iprof(slo, &samples);
        let mut maui = pretrained_maui(slo, &samples);

        let test_profiles = ["Honor 10", "Xperia E3", "Pixel", "Galaxy S7"];
        let mut iprof_err = 0.0f32;
        let mut maui_err = 0.0f32;
        for name in test_profiles {
            let profile = by_name(name).unwrap();
            let mut d_i = Device::new(profile.clone(), 10);
            let mut d_m = Device::new(profile, 10);
            for _ in 0..6 {
                let f = d_i.features();
                let n_i = iprof.predict(name, &f);
                let e_i = d_i.execute_task(n_i);
                iprof.observe(name, &f, n_i, e_i.computation_seconds, e_i.energy_pct);
                iprof_err += (e_i.computation_seconds - 3.0).abs();

                let f_m = d_m.features();
                let n_m = maui.predict(name, &f_m);
                let e_m = d_m.execute_task(n_m);
                maui.observe(name, &f_m, n_m, e_m.computation_seconds, e_m.energy_pct);
                maui_err += (e_m.computation_seconds - 3.0).abs();

                d_i.idle(60.0);
                d_m.idle(60.0);
            }
        }
        assert!(
            iprof_err < maui_err,
            "I-Prof total deviation {iprof_err} should beat MAUI {maui_err}"
        );
    }
}
