//! Gradient clipping + Gaussian noise (the mechanism of Abadi et al., CCS'16,
//! applied per worker gradient as in the paper's §3.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Gaussian mechanism: clip each gradient to an L2 bound and add
/// `N(0, (noise_multiplier * clip_norm / batch_size)^2)` noise per coordinate.
#[derive(Debug, Clone)]
pub struct GaussianMechanism {
    clip_norm: f32,
    noise_multiplier: f32,
    rng: StdRng,
}

impl GaussianMechanism {
    /// Creates a mechanism with the given clipping bound and noise multiplier
    /// (σ, the ratio of the noise standard deviation to the sensitivity).
    ///
    /// # Panics
    ///
    /// Panics if `clip_norm` is not positive or `noise_multiplier` is negative.
    pub fn new(clip_norm: f32, noise_multiplier: f32, seed: u64) -> Self {
        assert!(clip_norm > 0.0, "clip_norm must be positive");
        assert!(
            noise_multiplier >= 0.0,
            "noise_multiplier must be non-negative"
        );
        Self {
            clip_norm,
            noise_multiplier,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The clipping bound.
    pub fn clip_norm(&self) -> f32 {
        self.clip_norm
    }

    /// The noise multiplier σ.
    pub fn noise_multiplier(&self) -> f32 {
        self.noise_multiplier
    }

    /// The raw RNG state, for checkpoint/restore of a mid-run mechanism.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rebuilds a mechanism whose noise stream continues exactly where a
    /// state captured with [`GaussianMechanism::rng_state`] left off.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GaussianMechanism::new`].
    pub fn from_rng_state(clip_norm: f32, noise_multiplier: f32, state: u64) -> Self {
        let mut mechanism = Self::new(clip_norm, noise_multiplier, 0);
        mechanism.rng = StdRng::from_state(state);
        mechanism
    }

    /// Privatises a flat gradient computed on `batch_size` examples in place:
    /// clip to `clip_norm`, then add Gaussian noise with standard deviation
    /// `noise_multiplier * clip_norm / batch_size` per coordinate (the
    /// per-example sensitivity of an averaged mini-batch gradient).
    pub fn privatize(&mut self, gradient: &mut [f32], batch_size: usize) {
        clip_l2(gradient, self.clip_norm);
        if self.noise_multiplier == 0.0 || gradient.is_empty() {
            return;
        }
        let std = self.noise_multiplier * self.clip_norm / batch_size.max(1) as f32;
        for g in gradient.iter_mut() {
            *g += std * self.sample_standard_normal();
        }
    }

    fn sample_standard_normal(&mut self) -> f32 {
        // Box–Muller transform.
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

/// Clips a flat vector to an L2 norm bound in place, returning the factor
/// applied (1.0 when no clipping was necessary).
pub fn clip_l2(values: &mut [f32], max_norm: f32) -> f32 {
    let norm: f32 = values.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let factor = max_norm / norm;
        for v in values.iter_mut() {
            *v *= factor;
        }
        factor
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_reduces_large_norms_only() {
        let mut big = vec![3.0, 4.0];
        assert!((clip_l2(&mut big, 1.0) - 0.2).abs() < 1e-6);
        let norm: f32 = big.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);

        let mut small = vec![0.1, 0.1];
        assert_eq!(clip_l2(&mut small, 1.0), 1.0);
        assert_eq!(small, vec![0.1, 0.1]);
    }

    #[test]
    fn zero_noise_multiplier_only_clips() {
        let mut m = GaussianMechanism::new(1.0, 0.0, 1);
        let mut g = vec![3.0, 4.0];
        m.privatize(&mut g, 10);
        let norm: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn noise_perturbs_gradient() {
        let mut m = GaussianMechanism::new(1.0, 4.0, 2);
        let mut g = vec![0.0; 100];
        m.privatize(&mut g, 1);
        assert!(g.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn noise_scale_shrinks_with_batch_size() {
        let noise_norm = |batch: usize| -> f32 {
            let mut m = GaussianMechanism::new(1.0, 2.0, 3);
            let mut g = vec![0.0; 1000];
            m.privatize(&mut g, batch);
            g.iter().map(|v| v * v).sum::<f32>().sqrt()
        };
        assert!(noise_norm(100) < noise_norm(1) / 10.0);
    }

    #[test]
    fn mechanism_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = GaussianMechanism::new(1.0, 1.0, seed);
            let mut g = vec![0.5; 8];
            m.privatize(&mut g, 4);
            g
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "clip_norm must be positive")]
    fn invalid_clip_norm_panics() {
        GaussianMechanism::new(0.0, 1.0, 0);
    }

    #[test]
    fn noise_is_roughly_unbiased() {
        let mut m = GaussianMechanism::new(1.0, 1.0, 11);
        let mut g = vec![0.0f32; 20_000];
        m.privatize(&mut g, 1);
        let mean: f32 = g.iter().sum::<f32>() / g.len() as f32;
        assert!(mean.abs() < 0.05, "mean noise was {mean}");
    }
}
