//! 2-D convolution layer.
//!
//! Implements the convolutional blocks of the paper's Table 1 models with a
//! straightforward (non-im2col) loop nest: the mini-batches used by FLeet
//! workers are small, so clarity wins over raw throughput here.

use crate::init::Initializer;
use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// A 2-D convolution over `[batch, in_channels, height, width]` inputs with
/// stride support and no padding ("valid" convolution), as in the paper's
/// Table 1 topologies.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights with shape `[out_channels, in_channels, kernel, kernel]`.
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        init: Initializer,
        seed: u64,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weights = init.init(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
            seed,
        );
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            weights,
            bias: Tensor::zeros(&[out_channels]),
            grad_weights: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_input: None,
        }
    }

    /// Output spatial size for an input spatial size, or `None` if the input
    /// is smaller than the kernel.
    pub fn output_size(&self, input: usize) -> Option<usize> {
        if input < self.kernel {
            None
        } else {
            Some((input - self.kernel) / self.stride + 1)
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(MlError::ShapeMismatch {
                expected: vec![0, self.in_channels, 0, 0],
                actual: shape.to_vec(),
                context: "Conv2d::forward".to_string(),
            });
        }
        let (h, w) = (shape[2], shape[3]);
        let oh = self.output_size(h).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input height {h} smaller than kernel {}",
                self.kernel
            ))
        })?;
        let ow = self.output_size(w).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input width {w} smaller than kernel {}",
                self.kernel
            ))
        })?;
        Ok((shape[0], oh, ow))
    }

    #[inline]
    fn w_index(&self, oc: usize, ic: usize, kh: usize, kw: usize) -> usize {
        ((oc * self.in_channels + ic) * self.kernel + kh) * self.kernel + kw
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (batch, oh, ow) = self.check_input(input)?;
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let mut out = vec![0.0f32; batch * self.out_channels * oh * ow];
        let in_data = input.data();
        let w_data = self.weights.data();
        for b in 0..batch {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias.data()[oc];
                        for ic in 0..self.in_channels {
                            for ky in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                for kx in 0..self.kernel {
                                    let ix = ox * self.stride + kx;
                                    let in_idx = ((b * self.in_channels + ic) * h + iy) * w + ix;
                                    acc += in_data[in_idx] * w_data[self.w_index(oc, ic, ky, kx)];
                                }
                            }
                        }
                        out[((b * self.out_channels + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(Tensor::from_vec(out, &[batch, self.out_channels, oh, ow]))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| {
                MlError::InvalidArgument("Conv2d::backward called before forward".to_string())
            })?
            .clone();
        let (batch, oh, ow) = self.check_input(&input)?;
        let expected = vec![batch, self.out_channels, oh, ow];
        if grad_output.shape() != expected.as_slice() {
            return Err(MlError::ShapeMismatch {
                expected,
                actual: grad_output.shape().to_vec(),
                context: "Conv2d::backward".to_string(),
            });
        }
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let mut grad_input = vec![0.0f32; input.len()];
        let in_data = input.data();
        let go = grad_output.data();
        let w_data = self.weights.data();
        let gw = self.grad_weights.data_mut();
        let gb = self.grad_bias.data_mut();
        for b in 0..batch {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((b * self.out_channels + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[oc] += g;
                        for ic in 0..self.in_channels {
                            for ky in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                for kx in 0..self.kernel {
                                    let ix = ox * self.stride + kx;
                                    let in_idx = ((b * self.in_channels + ic) * h + iy) * w + ix;
                                    let widx =
                                        ((oc * self.in_channels + ic) * self.kernel + ky)
                                            * self.kernel
                                            + kx;
                                    gw[widx] += g * in_data[in_idx];
                                    grad_input[in_idx] += g * w_data[widx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(grad_input, input.shape()))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn gradients(&self) -> Vec<&Tensor> {
        vec![&self.grad_weights, &self.grad_bias]
    }

    fn zero_gradients(&mut self) {
        self.grad_weights = Tensor::zeros(&[
            self.out_channels,
            self.in_channels,
            self.kernel,
            self.kernel,
        ]);
        self.grad_bias = Tensor::zeros(&[self.out_channels]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_output_shape() {
        let mut conv = Conv2d::new(1, 2, 3, 1, Initializer::Xavier, 0);
        let out = conv.forward(&Tensor::zeros(&[2, 1, 8, 8])).unwrap();
        assert_eq!(out.shape(), &[2, 2, 6, 6]);
    }

    #[test]
    fn forward_with_stride() {
        let mut conv = Conv2d::new(1, 1, 2, 2, Initializer::Xavier, 0);
        let out = conv.forward(&Tensor::zeros(&[1, 1, 6, 6])).unwrap();
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
    }

    #[test]
    fn identity_kernel_extracts_pixels() {
        // A 1x1 kernel with weight 1.0 must reproduce the input.
        let mut conv = Conv2d::new(1, 1, 1, 1, Initializer::Zeros, 0);
        conv.weights = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let input = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_convolution_value() {
        // 2x2 all-ones kernel over a 2x2 input sums the input.
        let mut conv = Conv2d::new(1, 1, 2, 1, Initializer::Zeros, 0);
        conv.weights = Tensor::ones(&[1, 1, 2, 2]);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.data(), &[10.0]);
    }

    #[test]
    fn input_smaller_than_kernel_errors() {
        let mut conv = Conv2d::new(1, 1, 5, 1, Initializer::Xavier, 0);
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn wrong_channel_count_errors() {
        let mut conv = Conv2d::new(3, 1, 2, 1, Initializer::Xavier, 0);
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut conv = Conv2d::new(1, 1, 2, 1, Initializer::Xavier, 5);
        let input = Tensor::from_vec(
            vec![0.2, -0.5, 0.1, 0.7, 0.3, -0.2, 0.9, 0.4, -0.6],
            &[1, 1, 3, 3],
        );
        let eps = 1e-2f32;
        conv.zero_gradients();
        let out = conv.forward(&input).unwrap();
        conv.backward(&Tensor::ones(out.shape())).unwrap();
        let analytic = conv.gradients()[0].data()[0];

        let original = conv.weights.data()[0];
        conv.weights.data_mut()[0] = original + eps;
        let plus = conv.forward(&input).unwrap().sum();
        conv.weights.data_mut()[0] = original - eps;
        let minus = conv.forward(&input).unwrap().sum();
        conv.weights.data_mut()[0] = original;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn backward_shapes_grad_input_like_input() {
        let mut conv = Conv2d::new(2, 3, 2, 1, Initializer::Xavier, 1);
        let input = Tensor::zeros(&[2, 2, 5, 5]);
        let out = conv.forward(&input).unwrap();
        let grad_in = conv.backward(&Tensor::ones(out.shape())).unwrap();
        assert_eq!(grad_in.shape(), input.shape());
    }

    #[test]
    fn parameter_count_matches_formula() {
        let conv = Conv2d::new(3, 16, 3, 1, Initializer::Xavier, 0);
        assert_eq!(conv.parameter_count(), 16 * 3 * 3 * 3 + 16);
    }
}
