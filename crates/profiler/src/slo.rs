//! Service Level Objectives for learning tasks.

use serde::{Deserialize, Serialize};

/// The per-task budget a learning task should not exceed: a computation-time
/// target and/or an energy target. The paper's experiments use 3 seconds and
/// 0.075 % of the battery respectively (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Computation-time objective in seconds, if any.
    pub computation_seconds: Option<f32>,
    /// Energy objective as a percentage of battery capacity, if any.
    pub energy_pct: Option<f32>,
}

impl Slo {
    /// An SLO constraining only the computation time.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    pub fn latency(seconds: f32) -> Self {
        assert!(seconds > 0.0, "latency SLO must be positive");
        Self {
            computation_seconds: Some(seconds),
            energy_pct: None,
        }
    }

    /// An SLO constraining only the energy consumption.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not positive.
    pub fn energy(pct: f32) -> Self {
        assert!(pct > 0.0, "energy SLO must be positive");
        Self {
            computation_seconds: None,
            energy_pct: Some(pct),
        }
    }

    /// An SLO constraining both dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either value is not positive.
    pub fn both(seconds: f32, pct: f32) -> Self {
        assert!(seconds > 0.0 && pct > 0.0, "SLO values must be positive");
        Self {
            computation_seconds: Some(seconds),
            energy_pct: Some(pct),
        }
    }

    /// The paper's latency SLO of 3 seconds (§3.3).
    pub fn paper_latency_default() -> Self {
        Self::latency(3.0)
    }

    /// The paper's energy SLO of 0.075 % battery drop (§3.3).
    pub fn paper_energy_default() -> Self {
        Self::energy(0.075)
    }
}

impl Default for Slo {
    fn default() -> Self {
        Self::paper_latency_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let l = Slo::latency(3.0);
        assert_eq!(l.computation_seconds, Some(3.0));
        assert_eq!(l.energy_pct, None);
        let e = Slo::energy(0.075);
        assert_eq!(e.computation_seconds, None);
        assert_eq!(e.energy_pct, Some(0.075));
        let b = Slo::both(2.0, 0.05);
        assert!(b.computation_seconds.is_some() && b.energy_pct.is_some());
    }

    #[test]
    fn paper_defaults_match_section_3_3() {
        assert_eq!(Slo::paper_latency_default().computation_seconds, Some(3.0));
        assert_eq!(Slo::paper_energy_default().energy_pct, Some(0.075));
    }

    #[test]
    #[should_panic(expected = "latency SLO must be positive")]
    fn non_positive_latency_panics() {
        Slo::latency(0.0);
    }
}
