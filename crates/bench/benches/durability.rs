//! The durability tax: full in-process protocol exchanges per second with
//! journaling off, with every exchange write-ahead journaled, and with
//! journaling plus a periodic checkpoint — the number later batching work
//! is measured against.
//!
//! The exchange runs through the same wire entry points the transport uses
//! (`handle_request_wire`/`handle_result_wire`), with the mini-batch clamped
//! tiny, so the delta between modes is journal/checkpoint I/O, not model
//! math. Fsync policy is `OnCheckpoint` (the production default): the
//! journaled mode pays the write-path syscalls, the checkpoint mode
//! additionally pays the fsync-and-rename every `CHECKPOINT_EVERY` applies.
//!
//! Run via `scripts/ci.sh` (or set `FLEET_BENCH_JSON=BENCH_durability.json`);
//! timings are per-machine, so compare runs from the same host only.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_device::profile::catalogue;
use fleet_device::Device;
use fleet_durability::{DurabilityOptions, DurableStore, EventKind, FsyncPolicy};
use fleet_ml::models::mlp_classifier;
use fleet_server::protocol::TaskResponse;
use fleet_server::{encode_checkpoint, FleetServer, FleetServerConfig, ResultDisposition, Worker};
use std::sync::Arc;

/// Checkpoint cadence of the `journal+ckpt` mode, matching the
/// `DurabilityOptions` default.
const CHECKPOINT_EVERY: u64 = 64;

fn build_worker() -> Worker {
    let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 160), 11));
    let users = non_iid_shards(&dataset, 1, 2, 12);
    let profiles = catalogue();
    Worker::new(
        0,
        Device::new(profiles[0].clone(), 0),
        Arc::clone(&dataset),
        users.into_iter().next().expect("one shard"),
        mlp_classifier(6, &[8], 4, 0),
        100,
    )
}

fn fresh_server() -> FleetServer {
    FleetServer::new(
        mlp_classifier(6, &[8], 4, 0).parameters(),
        FleetServerConfig::builder()
            .num_classes(4)
            .build()
            .expect("bench config is valid"),
    )
}

fn durability_benches(c: &mut Criterion) {
    for mode in ["off", "journal", "journal+ckpt"] {
        c.bench_with_input(
            BenchmarkId::new("durable_submits", mode),
            &mode,
            |b, &mode| {
                let dir = std::env::temp_dir().join(format!(
                    "fleet-bench-durable-{}-{}",
                    std::process::id(),
                    mode.replace('+', "-")
                ));
                let _ = std::fs::remove_dir_all(&dir);
                let mut server = fresh_server();
                let mut worker = build_worker();
                let mut store = if mode == "off" {
                    None
                } else {
                    let mut options = DurabilityOptions::new(dir.clone());
                    options.fsync = FsyncPolicy::OnCheckpoint;
                    let (mut store, _recovered) = DurableStore::open(&options).expect("open store");
                    store
                        .begin(encode_checkpoint(&server.checkpoint()), 0, 0)
                        .expect("seal initial generation");
                    Some(store)
                };
                let mut applied = 0u64;
                b.iter(|| {
                    let raw_request = worker.request_wire();
                    let response = server
                        .handle_request_wire(raw_request.clone())
                        .expect("self-encoded request");
                    let mut assignment = match response {
                        TaskResponse::Assignment(a) => a,
                        TaskResponse::Rejected(reason) => panic!("bench rejected: {reason:?}"),
                    };
                    if let Some(store) = store.as_mut() {
                        store
                            .append(EventKind::Request, raw_request)
                            .expect("journal request");
                    }
                    // Clamp the workload so the measurement is protocol +
                    // journal I/O time, not gradient math.
                    assignment.mini_batch_size = assignment.mini_batch_size.min(8);
                    let raw_result = worker.execute_wire(&assignment).expect("execute");
                    let ack = server
                        .handle_result_wire(raw_result.clone())
                        .expect("self-encoded result");
                    assert_eq!(ack.disposition, ResultDisposition::Applied);
                    if let Some(store) = store.as_mut() {
                        store
                            .append(EventKind::Result, raw_result)
                            .expect("journal result");
                        applied += 1;
                        if mode == "journal+ckpt" && applied.is_multiple_of(CHECKPOINT_EVERY) {
                            store
                                .checkpoint(encode_checkpoint(&server.checkpoint()), applied)
                                .expect("periodic checkpoint");
                        }
                    }
                    black_box(ack.model_updated);
                });
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
    }
}

criterion_group!(benches, durability_benches);
criterion_main!(benches);
