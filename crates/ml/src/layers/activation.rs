//! Activation layers.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// Rectified Linear Unit: `max(0, x)` applied element-wise.
///
/// # Example
///
/// ```
/// use fleet_ml::layers::Relu;
/// use fleet_ml::layer::Layer;
/// use fleet_ml::tensor::Tensor;
///
/// # fn main() -> Result<(), fleet_ml::MlError> {
/// let mut relu = Relu::new();
/// let out = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]))?;
/// assert_eq!(out.data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    /// Mask workspace reused across steps ([`Tensor::resize_for`] keeps the
    /// allocation); `None` only before the first forward pass.
    mask: Option<Tensor>,
    /// Recycled forward-output allocation (see [`Layer::recycle_output`]).
    out_spare: Vec<f32>,
    /// Recycled input-gradient allocation (see [`Layer::recycle_grad`]).
    grad_spare: Vec<f32>,
}

impl Relu {
    /// Creates a new ReLU activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mask = self.mask.get_or_insert_with(Tensor::default);
        mask.resize_for(input.shape());
        let mut out = std::mem::take(&mut self.out_spare);
        out.resize(input.len(), 0.0);
        // One fused sweep writing both the mask and the masked output
        // (`v * m`, like the old two-pass `map` + `mul`, so non-finite
        // values propagate identically). Indexed over equal-length slices so
        // the bounds checks hoist and the loop vectorises.
        let src = input.data();
        let msk = &mut mask.data_mut()[..src.len()];
        let dst = &mut out[..src.len()];
        for i in 0..src.len() {
            let m = f32::from(src[i] > 0.0);
            msk[i] = m;
            dst[i] = src[i] * m;
        }
        Ok(Tensor::from_vec(out, input.shape()))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| {
            MlError::InvalidArgument("Relu::backward called before forward".to_string())
        })?;
        if mask.shape() != grad_output.shape() {
            return Err(MlError::ShapeMismatch {
                expected: mask.shape().to_vec(),
                actual: grad_output.shape().to_vec(),
                context: "Relu::backward".to_string(),
            });
        }
        let mut grad = std::mem::take(&mut self.grad_spare);
        grad.resize(grad_output.len(), 0.0);
        for ((g, &go), &m) in grad.iter_mut().zip(grad_output.data()).zip(mask.data()) {
            *g = go * m;
        }
        Ok(Tensor::from_vec(grad, grad_output.shape()))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn gradients(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_gradients(&mut self) {}

    fn recycle_output(&mut self, output: Tensor) {
        self.out_spare = output.into_vec();
    }

    fn recycle_grad(&mut self, grad: Tensor) {
        self.grad_spare = grad.into_vec();
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let out = relu
            .forward(&Tensor::from_vec(vec![-2.0, -0.1, 0.0, 0.5, 3.0], &[1, 5]))
            .unwrap();
        assert_eq!(out.data(), &[0.0, 0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]))
            .unwrap();
        let grad = relu
            .backward(&Tensor::from_vec(vec![5.0, 5.0], &[1, 2]))
            .unwrap();
        assert_eq!(grad.data(), &[0.0, 5.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[1, 1])).is_err());
    }

    #[test]
    fn has_no_parameters() {
        let relu = Relu::new();
        assert_eq!(relu.parameter_count(), 0);
    }
}
