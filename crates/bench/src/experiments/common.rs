//! Shared world-building helpers for the experiment harnesses.

use fleet_data::partition::{iid_partition, non_iid_shards, UserPartition};
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_data::Dataset;
use fleet_device::DeviceProfile;
use fleet_ml::models::mlp_classifier;
use fleet_ml::Sequential;

/// Feature dimensionality of the vector-encoded synthetic image stand-ins.
pub const FEATURE_DIM: usize = 32;

/// A federated classification world: train/test datasets plus a user
/// partition.
#[derive(Debug)]
pub struct World {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    /// Example indices per user (into the training split).
    pub users: UserPartition,
}

/// Builds a world with the given class count and partitioning scheme.
pub fn world(
    num_classes: usize,
    examples: usize,
    num_users: usize,
    non_iid: bool,
    seed: u64,
) -> World {
    let data = generate(
        &SyntheticSpec::vector(num_classes, FEATURE_DIM, examples),
        seed,
    );
    let (train, test) = data.split(0.2);
    let users = if non_iid {
        non_iid_shards(&train, num_users, 2, seed + 1)
    } else {
        iid_partition(&train, num_users, seed + 1)
    };
    World { train, test, users }
}

/// The MNIST-stand-in world used by Figs. 8, 9, 15 (non-IID, 10 classes).
pub fn mnist_non_iid(examples: usize, num_users: usize, seed: u64) -> World {
    world(10, examples, num_users, true, seed)
}

/// A many-class IID world (E-MNIST / CIFAR-100 stand-ins for Fig. 10) with
/// better-separated clusters so that a laptop-scale run reaches meaningful
/// accuracy within a few thousand steps.
pub fn many_class_iid(num_classes: usize, examples: usize, num_users: usize, seed: u64) -> World {
    let spec = SyntheticSpec {
        num_classes,
        feature_shape: vec![FEATURE_DIM],
        num_examples: examples,
        cluster_std: 0.25,
        cluster_spread: 1.5,
    };
    let data = generate(&spec, seed);
    let (train, test) = data.split(0.2);
    let users = iid_partition(&train, num_users, seed + 1);
    World { train, test, users }
}

/// A fresh model matching the worlds produced by [`world`].
pub fn model(num_classes: usize, seed: u64) -> Sequential {
    mlp_classifier(FEATURE_DIM, &[32], num_classes, seed)
}

/// Training-device profiles used to bootstrap the profilers: perturbed copies
/// of the catalogue (the paper uses 15 AWS devices disjoint from the test
/// set; we perturb per-sample costs by ±10 % to model that disjointness).
pub fn profiler_training_profiles() -> Vec<DeviceProfile> {
    fleet_device::profile::catalogue()
        .into_iter()
        .take(15)
        .enumerate()
        .map(|(i, mut p)| {
            let factor = 0.9 + 0.02 * (i % 11) as f32;
            p.name = format!("{} (train)", p.name);
            p.base_secs_per_sample *= factor;
            p.base_energy_pct_per_sample *= factor;
            p
        })
        .collect()
}
