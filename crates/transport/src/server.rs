//! The socket-facing server: an accept loop and one thread per connection,
//! all multiplexed onto a single [`FleetServer`] core behind a mutex.
//!
//! ## Fault handling, per connection
//!
//! | event                                  | effect                         |
//! |----------------------------------------|--------------------------------|
//! | clean close (EOF on a frame boundary)  | connection ends, leases issued |
//! |                                        | on it are reclaimed            |
//! | torn frame / EOF mid-frame             | same, after a best-effort      |
//! |                                        | `Error` frame                  |
//! | oversized or malformed header          | same                           |
//! | frame-read deadline expiry             | same                           |
//! | malformed payload (wire decode error)  | same                           |
//! | saturated shard on a request           | `Overloaded` rejection in a    |
//! |                                        | `Response` frame; conn lives   |
//!
//! Nothing a single peer does can take down the accept loop or another
//! connection. The core mutex serialises whole exchanges, so the byte-level
//! trajectory of the model is exactly the one the same schedule produces
//! in-process.
//!
//! With [`TransportConfig::durability`] set, death of the server *process*
//! joins the fault envelope: every applied exchange is journaled inside the
//! core mutex before its reply frame leaves, checkpoints are written on a
//! step cadence, and [`TransportServer::bind`] recovers
//! checkpoint-plus-journal from disk before the accept loop opens (see
//! [`crate::durable`]).

use crate::conn::{Endpoint, Listener, Stream};
use crate::deadline::DeadlineReader;
use crate::durable::{self, reclaim_payload, Durable};
use crate::frame::{
    self, encode_status, read_frame, write_frame, FrameError, FrameKind, ServerStatus,
};
use bytes::Bytes;
use fleet_durability::{DurabilityOptions, EventKind, FsyncPolicy};
use fleet_server::protocol::{RejectionReason, TaskResponse};
use fleet_server::{encode_checkpoint, FleetServer, FleetServerState, ResultDisposition};
use fleet_telemetry::{Counter, Latency, TelemetryHandle};
use std::collections::BTreeSet;
use std::io;
use std::io::Read as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`TransportServer`].
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Hard bound on any received frame's declared length; longer headers
    /// kill the connection before a body byte is read.
    pub max_frame_len: usize,
    /// Total wall-clock budget to receive one complete frame (header and
    /// body), measured from its first byte. A connection idling *between*
    /// frames is a worker computing and is left alone; a connection stalled
    /// *mid-frame* is a slow-loris and is cut off.
    pub read_budget: Duration,
    /// Kernel timeout on any single write; a peer that stops draining its
    /// receive buffer fails the write and loses the connection.
    pub write_timeout: Duration,
    /// When set, [`TransportServer::shutdown`] also persists the final
    /// checkpoint (the binary `fleet_server::checkpoint` encoding) here.
    pub checkpoint_path: Option<PathBuf>,
    /// When set, the server is durable: [`TransportServer::bind`] recovers
    /// checkpoint + write-ahead journal from this directory before
    /// accepting, every applied exchange is journaled before its reply, and
    /// checkpoints are written every
    /// [`DurabilityOptions::checkpoint_every`] steps.
    pub durability: Option<DurabilityOptions>,
    /// Where connection/frame events (and, through the shared core, the
    /// protocol events of the embedded [`FleetServer`]) are reported.
    /// Disabled by default; installed on the core after crash recovery so
    /// replayed events are never double-counted.
    pub telemetry: TelemetryHandle,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            max_frame_len: frame::MAX_FRAME_LEN,
            read_budget: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            checkpoint_path: None,
            durability: None,
            telemetry: TelemetryHandle::disabled(),
        }
    }
}

impl TransportConfig {
    /// A builder over the defaults. Durability is part of the builder — a
    /// journal knob without a durable directory is a [`TransportConfigError`]
    /// at `build` time, so a server can no longer be constructed with the
    /// journal half-configured.
    pub fn builder() -> TransportConfigBuilder {
        TransportConfigBuilder::default()
    }
}

/// Why a [`TransportConfigBuilder::build`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportConfigError {
    /// `max_frame_len` is zero — no frame could ever be received.
    ZeroMaxFrameLen,
    /// The per-frame read budget is zero — every frame would time out.
    ZeroReadBudget,
    /// The write timeout is zero — every reply would fail.
    ZeroWriteTimeout,
    /// A durability knob was set without [`TransportConfigBuilder::durable`]:
    /// the journal would silently not exist.
    DurabilityWithoutDir {
        /// The knob that was set (`checkpoint_every`, `fsync`,
        /// `keep_generations`).
        knob: &'static str,
    },
    /// `keep_generations` is zero — recovery needs at least one checkpoint
    /// generation on disk.
    ZeroKeepGenerations,
}

impl std::fmt::Display for TransportConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportConfigError::ZeroMaxFrameLen => write!(f, "max_frame_len must be at least 1"),
            TransportConfigError::ZeroReadBudget => write!(f, "read_budget must be non-zero"),
            TransportConfigError::ZeroWriteTimeout => write!(f, "write_timeout must be non-zero"),
            TransportConfigError::DurabilityWithoutDir { knob } => write!(
                f,
                "durability knob `{knob}` set without a durable directory; call .durable(dir)"
            ),
            TransportConfigError::ZeroKeepGenerations => {
                write!(f, "keep_generations must be at least 1")
            }
        }
    }
}

impl std::error::Error for TransportConfigError {}

/// Builder for [`TransportConfig`]. The durability options are folded in:
/// `.durable(dir)` turns the journal on, and the cadence/fsync/retention
/// knobs refine it — setting any of them *without* `.durable(dir)` is a
/// typed error instead of a silently non-durable server.
#[derive(Debug, Clone, Default)]
pub struct TransportConfigBuilder {
    max_frame_len: Option<usize>,
    read_budget: Option<Duration>,
    write_timeout: Option<Duration>,
    checkpoint_path: Option<PathBuf>,
    telemetry: Option<TelemetryHandle>,
    durable_dir: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    fsync: Option<FsyncPolicy>,
    keep_generations: Option<u64>,
}

impl TransportConfigBuilder {
    /// Bounds any received frame's declared length.
    pub fn max_frame_len(mut self, value: usize) -> Self {
        self.max_frame_len = Some(value);
        self
    }

    /// Sets the wall-clock budget to receive one complete frame.
    pub fn read_budget(mut self, value: Duration) -> Self {
        self.read_budget = Some(value);
        self
    }

    /// Sets the kernel timeout on any single write.
    pub fn write_timeout(mut self, value: Duration) -> Self {
        self.write_timeout = Some(value);
        self
    }

    /// Also persists the final shutdown checkpoint to this path.
    pub fn checkpoint_path(mut self, value: PathBuf) -> Self {
        self.checkpoint_path = Some(value);
        self
    }

    /// Installs a telemetry handle on the server (and its core).
    pub fn telemetry(mut self, value: TelemetryHandle) -> Self {
        self.telemetry = Some(value);
        self
    }

    /// Turns durability on: recover from (and journal into) `dir`.
    pub fn durable(mut self, dir: PathBuf) -> Self {
        self.durable_dir = Some(dir);
        self
    }

    /// Applied steps between cadence checkpoints (0 = startup/shutdown
    /// only). Requires [`TransportConfigBuilder::durable`].
    pub fn checkpoint_every(mut self, value: u64) -> Self {
        self.checkpoint_every = Some(value);
        self
    }

    /// When the durable store fsyncs. Requires
    /// [`TransportConfigBuilder::durable`].
    pub fn fsync(mut self, value: FsyncPolicy) -> Self {
        self.fsync = Some(value);
        self
    }

    /// Checkpoint generations retained on disk. Requires
    /// [`TransportConfigBuilder::durable`].
    pub fn keep_generations(mut self, value: u64) -> Self {
        self.keep_generations = Some(value);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<TransportConfig, TransportConfigError> {
        let defaults = TransportConfig::default();
        let max_frame_len = self.max_frame_len.unwrap_or(defaults.max_frame_len);
        if max_frame_len == 0 {
            return Err(TransportConfigError::ZeroMaxFrameLen);
        }
        let read_budget = self.read_budget.unwrap_or(defaults.read_budget);
        if read_budget.is_zero() {
            return Err(TransportConfigError::ZeroReadBudget);
        }
        let write_timeout = self.write_timeout.unwrap_or(defaults.write_timeout);
        if write_timeout.is_zero() {
            return Err(TransportConfigError::ZeroWriteTimeout);
        }
        let durability = match self.durable_dir {
            Some(dir) => {
                let mut options = DurabilityOptions::new(dir);
                if let Some(every) = self.checkpoint_every {
                    options.checkpoint_every = every;
                }
                if let Some(fsync) = self.fsync {
                    options.fsync = fsync;
                }
                if let Some(keep) = self.keep_generations {
                    if keep == 0 {
                        return Err(TransportConfigError::ZeroKeepGenerations);
                    }
                    options.keep_generations = keep;
                }
                Some(options)
            }
            None => {
                for (set, knob) in [
                    (self.checkpoint_every.is_some(), "checkpoint_every"),
                    (self.fsync.is_some(), "fsync"),
                    (self.keep_generations.is_some(), "keep_generations"),
                ] {
                    if set {
                        return Err(TransportConfigError::DurabilityWithoutDir { knob });
                    }
                }
                None
            }
        };
        Ok(TransportConfig {
            max_frame_len,
            read_budget,
            write_timeout,
            checkpoint_path: self.checkpoint_path,
            durability,
            telemetry: self.telemetry.unwrap_or_default(),
        })
    }
}

/// The mutable core every connection thread shares.
struct Core {
    server: FleetServer,
    /// Completed protocol steps: applied results + terminal (non-overload)
    /// rejections. See [`ServerStatus::steps`].
    steps: u64,
    /// The durable store, when configured — inside the mutex so journal
    /// order is exactly apply order.
    durable: Option<Durable>,
}

struct Shared {
    core: Mutex<Core>,
    draining: AtomicBool,
    /// `try_clone`d handles of every accepted connection, so shutdown can
    /// force-close sockets that threads are blocked on. Dead entries are
    /// harmless — `shutdown_both` on a closed socket is a no-op.
    conns: Mutex<Vec<Stream>>,
    /// Join handles of the connection threads.
    handles: Mutex<Vec<JoinHandle<()>>>,
    config: TransportConfig,
}

/// A [`FleetServer`] listening on a socket. Construct with
/// [`TransportServer::bind`]; always end with [`TransportServer::shutdown`],
/// which joins every thread and returns the drained core's checkpoint.
pub struct TransportServer {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    accept: Option<JoinHandle<()>>,
}

impl TransportServer {
    /// Binds `endpoint` and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Whatever binding reports — notably `AddrInUse` when a UDS path
    /// already exists (this function never deletes a path it did not
    /// create; the caller owns stale-socket cleanup). With
    /// [`TransportConfig::durability`] set, also whatever crash recovery
    /// reports — recovery runs (and must succeed) before the endpoint is
    /// bound, so a worker that can connect always sees recovered state.
    pub fn bind(
        endpoint: &Endpoint,
        server: FleetServer,
        config: TransportConfig,
    ) -> io::Result<Self> {
        let mut server = server;
        let (durable, steps) = match &config.durability {
            Some(options) => {
                let (durable, steps) = durable::recover(&mut server, options)?;
                (Some(durable), steps)
            }
            None => (None, 0),
        };
        // Installed after recovery so journal replay is never double-counted
        // as live protocol traffic.
        server.set_telemetry(config.telemetry.clone());
        let (listener, resolved) = Listener::bind(endpoint)?;
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                server,
                steps,
                durable,
            }),
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(TransportServer {
            shared,
            endpoint: resolved,
            accept: Some(accept),
        })
    }

    /// The bound endpoint (TCP port 0 resolved to the assigned port).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Completed protocol steps so far (see [`ServerStatus::steps`]).
    pub fn steps(&self) -> u64 {
        self.shared.core.lock().expect("core mutex").steps
    }

    /// Whether a drain was requested — by [`TransportServer::shutdown`] or
    /// by a client's `Shutdown` frame (the embedding process polls this to
    /// decide when to actually shut down).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Stops accepting, force-closes every connection, joins every thread,
    /// drains the core (per-shard pending gradients are flushed into the
    /// model) and returns its checkpoint — also persisted to
    /// [`TransportConfig::checkpoint_path`] when configured. For a UDS
    /// endpoint the socket file is removed.
    ///
    /// # Errors
    ///
    /// Only checkpoint persistence can fail; the teardown itself is
    /// best-effort and infallible.
    pub fn shutdown(mut self) -> io::Result<FleetServerState> {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the accept loop: it only observes the flag between accepts.
        let _ = Stream::connect(&self.endpoint);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Force-close every connection; blocked handler threads wake with
        // EOF/error, reclaim their leases and exit.
        for conn in self.shared.conns.lock().expect("conns mutex").drain(..) {
            conn.shutdown_both();
        }
        let handles: Vec<JoinHandle<()>> = self
            .shared
            .handles
            .lock()
            .expect("handles mutex")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        let state = {
            let mut core = self.shared.core.lock().expect("core mutex");
            core.server.drain();
            let state = core.server.checkpoint();
            let Core {
                server,
                steps,
                durable,
            } = &mut *core;
            if let Some(durable) = durable {
                // Seal the drained state as the final generation so the next
                // bind recovers it without replaying this run's journal.
                durable.force_checkpoint(server, *steps)?;
            }
            state
        };
        if let Some(path) = &self.shared.config.checkpoint_path {
            std::fs::write(path, encode_checkpoint(&state).to_vec())?;
        }
        if let Endpoint::Uds(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        Ok(state)
    }

    /// Tears the server down as a *crash* would: no drain, no final
    /// checkpoint, and — unlike [`TransportServer::shutdown`] — the UDS
    /// socket file is left on disk. The durable directory is frozen exactly
    /// as an uncontrolled kill at this instant leaves it, which is what the
    /// restart tests recover from. Threads are still joined so the process
    /// can continue.
    pub fn abort(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let _ = Stream::connect(&self.endpoint);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Freeze the journal before connections close: the disconnect
        // reclaims that follow must not be journaled, exactly as a real kill
        // would never get to journal them.
        self.shared.core.lock().expect("core mutex").durable = None;
        for conn in self.shared.conns.lock().expect("conns mutex").drain(..) {
            conn.shutdown_both();
        }
        let handles: Vec<JoinHandle<()>> = self
            .shared
            .handles
            .lock()
            .expect("handles mutex")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok(stream) => {
                if shared.draining.load(Ordering::SeqCst) {
                    // The stream is dropped: during a drain new peers get an
                    // immediate close, and the shutdown poke lands here.
                    break;
                }
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().expect("conns mutex").push(clone);
                }
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || serve_conn(&conn_shared, stream));
                shared.handles.lock().expect("handles mutex").push(handle);
            }
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                // A transient accept failure (EMFILE, aborted handshake)
                // must not kill the server; yield and keep accepting.
                std::thread::yield_now();
            }
        }
    }
}

/// One connection's lifetime. Every fault path funnels to the same exit:
/// best-effort `Error` frame, reclaim the leases issued on this connection,
/// close the socket.
fn serve_conn(shared: &Shared, mut stream: Stream) {
    if let Some(sink) = shared.config.telemetry.get() {
        sink.add(Counter::ConnectionsOpened, 1);
    }
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    // Task ids assigned over this connection. On any disconnect they are
    // force-reclaimed; ids whose results were applied are in the completed
    // set by then, so reclaiming them is a no-op.
    let mut issued: BTreeSet<u64> = BTreeSet::new();
    loop {
        // Wait indefinitely for the next frame to *start*: an idle worker is
        // computing, not attacking. (Shutdown still wakes this read by
        // force-closing the socket.) The deadline arms on the first byte.
        let _ = stream.set_read_timeout(None);
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(1) => {}
            // 0 bytes = clean close between frames; errors = reset or
            // forced close. Either way the connection is over.
            _ => break,
        }
        let frame = {
            let mut reader = FrameInFlight {
                first: Some(first[0]),
                rest: DeadlineReader::new(&mut stream, shared.config.read_budget),
            };
            read_frame(&mut reader, shared.config.max_frame_len)
        };
        let outcome = match frame {
            Ok((kind, payload)) => {
                let started = shared
                    .config
                    .telemetry
                    .get()
                    .map(|sink| sink.now_ns())
                    .unwrap_or(0);
                let outcome = handle_frame(shared, kind, payload, &mut issued);
                if let Some(sink) = shared.config.telemetry.get() {
                    sink.record_latency(
                        Latency::HandleFrame,
                        sink.now_ns().saturating_sub(started),
                    );
                }
                outcome
            }
            Err(FrameError::Closed) => break,
            Err(err @ (FrameError::Io(_) | FrameError::Torn { .. })) => {
                // The peer is gone or mid-crash; an Error frame would only
                // race the close. Just drop the connection.
                let _ = err;
                break;
            }
            Err(err) => {
                // Structural garbage from a live peer (oversized header,
                // unknown kind, zero-length frame): tell it why, then cut it
                // off.
                let _ = write_frame(&mut stream, FrameKind::Error, err.to_string().as_bytes());
                break;
            }
        };
        match outcome {
            ConnOutcome::Reply(kind, payload) => {
                if write_frame(&mut stream, kind, &payload).is_err() {
                    break;
                }
            }
            ConnOutcome::Fatal(message) => {
                let _ = write_frame(&mut stream, FrameKind::Error, message.as_bytes());
                break;
            }
        }
    }
    if let Some(sink) = shared.config.telemetry.get() {
        sink.add(Counter::ConnectionsClosed, 1);
    }
    if !issued.is_empty() {
        let mut core = shared.core.lock().expect("core mutex");
        let Core {
            server, durable, ..
        } = &mut *core;
        for task_id in issued {
            if server.reclaim_task(task_id) {
                if let Some(durable) = durable {
                    // Best-effort: a reclaim that misses the journal is not
                    // lost state, just a lease that replay re-issues as
                    // outstanding — it re-expires through the lease clock,
                    // the same path a crashed worker's lease always takes.
                    let _ = durable.append(EventKind::Reclaim, reclaim_payload(task_id));
                }
            }
        }
    }
    stream.shutdown_both();
}

/// Replays the frame's first byte (read without a deadline while the
/// connection idled) ahead of the deadline-bounded remainder.
struct FrameInFlight<'a> {
    first: Option<u8>,
    rest: DeadlineReader<'a>,
}

impl io::Read for FrameInFlight<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(byte) = self.first.take() {
            if buf.is_empty() {
                self.first = Some(byte);
                return Ok(0);
            }
            buf[0] = byte;
            return Ok(1);
        }
        self.rest.read(buf)
    }
}

enum ConnOutcome {
    /// Send this frame and keep serving.
    Reply(FrameKind, Vec<u8>),
    /// Send an `Error` frame with this message and close the connection.
    Fatal(String),
}

fn handle_frame(
    shared: &Shared,
    kind: FrameKind,
    payload: Vec<u8>,
    issued: &mut BTreeSet<u64>,
) -> ConnOutcome {
    match kind {
        FrameKind::Request => {
            let raw = Bytes::from(payload);
            let mut core = shared.core.lock().expect("core mutex");
            let Core {
                server,
                steps,
                durable,
            } = &mut *core;
            // `catch_unwind` *inside* the guard: a panic in the core (a bug,
            // or input the decode layer failed to reject) stops at this
            // boundary instead of unwinding through the guard and poisoning
            // the mutex for every other connection. The offending peer is
            // cut off; the server lives.
            let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                server.handle_request_wire(raw.clone())
            }));
            let handled = match handled {
                Ok(result) => result,
                Err(_) => return ConnOutcome::Fatal("internal error handling request".into()),
            };
            match handled {
                Ok(response) => {
                    match &response {
                        TaskResponse::Assignment(assignment) => {
                            issued.insert(assignment.task_id);
                        }
                        // An overload rejection is backpressure, not an
                        // answer: the worker still owes this exchange, so
                        // the step counter must not move.
                        TaskResponse::Rejected(RejectionReason::Overloaded { .. }) => {}
                        // Terminal rejections consume the worker's turn.
                        TaskResponse::Rejected(_) => *steps += 1,
                    }
                    // Journal before replying: even a rejected request
                    // mutates controller/profiler state, so replay needs it.
                    if let Some(durable) = durable {
                        if let Err(err) = durable.append(EventKind::Request, raw) {
                            return ConnOutcome::Fatal(format!("journal append failed: {err}"));
                        }
                        let checkpointed = match durable.maybe_checkpoint(server, *steps) {
                            Ok(wrote) => wrote,
                            Err(err) => {
                                return ConnOutcome::Fatal(format!("checkpoint failed: {err}"))
                            }
                        };
                        if let Some(sink) = shared.config.telemetry.get() {
                            sink.add(Counter::JournalAppends, 1);
                            if checkpointed {
                                sink.add(Counter::Checkpoints, 1);
                            }
                        }
                    }
                    ConnOutcome::Reply(
                        FrameKind::Response,
                        fleet_server::wire::encode_response(&response).to_vec(),
                    )
                }
                Err(err) => ConnOutcome::Fatal(format!("bad request payload: {err}")),
            }
        }
        FrameKind::Result => {
            let raw = Bytes::from(payload);
            let mut core = shared.core.lock().expect("core mutex");
            let Core {
                server,
                steps,
                durable,
            } = &mut *core;
            let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                server.handle_result_wire(raw.clone())
            }));
            let handled = match handled {
                Ok(result) => result,
                Err(_) => return ConnOutcome::Fatal("internal error handling result".into()),
            };
            match handled {
                Ok(ack) => {
                    if ack.disposition == ResultDisposition::Applied {
                        *steps += 1;
                    }
                    // Journal whatever the disposition — even a Duplicate
                    // exchange advances the logical clock's expiry sweep, so
                    // replay must see it to reconverge bit-for-bit.
                    if let Some(durable) = durable {
                        if let Err(err) = durable.append(EventKind::Result, raw) {
                            return ConnOutcome::Fatal(format!("journal append failed: {err}"));
                        }
                        let checkpointed = match durable.maybe_checkpoint(server, *steps) {
                            Ok(wrote) => wrote,
                            Err(err) => {
                                return ConnOutcome::Fatal(format!("checkpoint failed: {err}"))
                            }
                        };
                        if let Some(sink) = shared.config.telemetry.get() {
                            sink.add(Counter::JournalAppends, 1);
                            if checkpointed {
                                sink.add(Counter::Checkpoints, 1);
                            }
                        }
                    }
                    ConnOutcome::Reply(
                        FrameKind::Ack,
                        fleet_server::wire::encode_ack(&ack).to_vec(),
                    )
                }
                Err(err) => ConnOutcome::Fatal(format!("bad result payload: {err}")),
            }
        }
        FrameKind::Status => {
            let status = snapshot_status(shared);
            ConnOutcome::Reply(FrameKind::StatusReply, encode_status(&status))
        }
        FrameKind::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            let status = snapshot_status(shared);
            ConnOutcome::Reply(FrameKind::StatusReply, encode_status(&status))
        }
        // Server→worker kinds arriving at the server are a protocol
        // violation.
        FrameKind::Response | FrameKind::Ack | FrameKind::StatusReply | FrameKind::Error => {
            ConnOutcome::Fatal(format!(
                "frame kind {} is server-to-worker only",
                kind.as_byte()
            ))
        }
    }
}

fn snapshot_status(shared: &Shared) -> ServerStatus {
    let core = shared.core.lock().expect("core mutex");
    ServerStatus {
        steps: core.steps,
        clock: core.server.clock(),
        outstanding: core.server.tasks().outstanding_len() as u64,
        draining: shared.draining.load(Ordering::SeqCst),
    }
}
