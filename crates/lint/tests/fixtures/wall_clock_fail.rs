// Fixture (scanned outside the bench crates): wall-clock reads in
// logical-round code. Expect five wall-clock findings — the rule is
// token-based, so the two `use` paths, the return type, and both call
// sites each count.

use std::time::Instant;
use std::time::SystemTime;

pub fn stamp() -> (Instant, u64) {
    let now = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (Instant::now(), now)
}
