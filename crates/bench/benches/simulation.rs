//! Throughput of the asynchronous training simulation (global steps per
//! second), which bounds how fast the Figs. 8–11 experiments run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fleet_core::AdaSgd;
use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_ml::models::mlp_classifier;
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution};

fn simulation_benches(c: &mut Criterion) {
    let data = generate(&SyntheticSpec::vector(10, 32, 2000), 1);
    let (train, test) = data.split(0.2);
    let users = non_iid_shards(&train, 50, 2, 2);

    c.bench_function("async_simulation_100_steps_adasgd", |b| {
        b.iter(|| {
            let cfg = SimulationConfig::builder()
                .steps(100)
                .batch_size(32)
                .staleness(StalenessDistribution::d1())
                .eval_every(1000)
                .seed(3)
                .build()
                .expect("bench config is valid");
            let sim = AsyncSimulation::new(&train, &test, &users, cfg);
            let mut model = mlp_classifier(32, &[32], 10, 0);
            black_box(sim.run(&mut model, AdaSgd::new(10, 99.7)))
        });
    });

    c.bench_function("async_simulation_50_steps_k4_parallel", |b| {
        b.iter(|| {
            let cfg = SimulationConfig::builder()
                .steps(50)
                .batch_size(32)
                .aggregation_k(4)
                .staleness(StalenessDistribution::d1())
                .eval_every(1000)
                .seed(3)
                .build()
                .expect("bench config is valid");
            let sim = AsyncSimulation::new(&train, &test, &users, cfg);
            let mut model = mlp_classifier(32, &[32], 10, 0);
            black_box(sim.run(&mut model, AdaSgd::new(10, 99.7)))
        });
    });

    c.bench_function("async_simulation_50_steps_k4_sharded8", |b| {
        b.iter(|| {
            let cfg = SimulationConfig::builder()
                .steps(50)
                .batch_size(32)
                .aggregation_k(4)
                .shards(8)
                .staleness(StalenessDistribution::d1())
                .eval_every(1000)
                .seed(3)
                .build()
                .expect("bench config is valid");
            let sim = AsyncSimulation::new(&train, &test, &users, cfg);
            let mut model = mlp_classifier(32, &[32], 10, 0);
            black_box(sim.run(&mut model, AdaSgd::new(10, 99.7)))
        });
    });

    c.bench_function("worker_gradient_batch100", |b| {
        let mut model = mlp_classifier(32, &[32], 10, 0);
        let indices: Vec<usize> = (0..100).collect();
        let (x, y) = train.batch(&indices);
        b.iter(|| black_box(model.compute_gradient(&x, &y).unwrap()));
    });
}

criterion_group!(benches, simulation_benches);
criterion_main!(benches);
