//! Micro-benchmarks of the ML substrate kernels (matrix multiply, CNN
//! forward/backward, gradient arithmetic) that dominate worker-side cost.
//!
//! Run via `scripts/ci.sh` (or set `FLEET_BENCH_JSON=BENCH_kernels.json`) to
//! get a machine-readable record of the perf trajectory. The key pairs:
//!
//! * `matmul_256_blocked` vs `matmul_256_naive` — the blocked/parallel kernel
//!   (runtime-dispatched to the best ISA) against the seed kernel on the
//!   acceptance-size 256x256x256 product.
//! * `matmul_256_simd` vs `matmul_256_scalar_fallback` — the same tiled
//!   kernel pinned to the AVX2+FMA intrinsics and the `mul_add` fallback;
//!   the two produce bit-identical outputs, so the gap is pure dispatch win.
//! * `matmul_64_dense_*` and `matmul_64_onehot_*` — the sparsity-branch
//!   question: the seed kernel's `a == 0.0` skip only wins on one-hot rows,
//!   which is why the dense path dropped it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fleet_ml::kernels;
use fleet_ml::kernels::Isa;
use fleet_ml::models::{small_cnn, table1_mnist_cnn};
use fleet_ml::tensor::Tensor;
use fleet_ml::Gradient;

fn pattern(len: usize, scale: f32) -> Vec<f32> {
    // Xorshift fill: the old `(i * 2654435761) as f32 / usize::MAX as f32`
    // form never wrapped the hash to 32 bits, so every value rounded to
    // -0.5·scale and the benches ran on constant data.
    let mut state = 0x9E37_79B9_7F4A_7C15u64 | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * scale
        })
        .collect()
}

/// One-hot rows: the best case for the seed kernel's sparsity skip.
fn one_hot(rows: usize, cols: usize) -> Vec<f32> {
    let mut data = vec![0.0; rows * cols];
    for r in 0..rows {
        data[r * cols + (r * 7) % cols] = 1.0;
    }
    data
}

fn matmul_benches(c: &mut Criterion) {
    let a256 = pattern(256 * 256, 2.0);
    let b256 = pattern(256 * 256, 2.0);
    let mut out256 = vec![0.0f32; 256 * 256];

    c.bench_function("matmul_256_blocked", |b| {
        b.iter(|| {
            kernels::matmul(&a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });
    // The dispatch pair: the same tiled kernel pinned to each Isa. On an
    // AVX2+FMA host "blocked" above equals the simd row; the scalar row is
    // what `FLEET_SIMD=off` (or a non-x86 host) would get.
    c.bench_function("matmul_256_simd", |b| {
        let isa = Isa::detect();
        b.iter(|| {
            kernels::matmul_with(isa, &a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });
    c.bench_function("matmul_256_scalar_fallback", |b| {
        b.iter(|| {
            kernels::matmul_with(Isa::Scalar, &a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });
    c.bench_function("matmul_256_naive", |b| {
        b.iter(|| {
            kernels::matmul_naive(&a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });
    c.bench_function("matmul_tn_256", |b| {
        b.iter(|| {
            out256.fill(0.0);
            kernels::matmul_tn_acc(&a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });
    c.bench_function("matmul_nt_256", |b| {
        b.iter(|| {
            kernels::matmul_nt(&a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });
    c.bench_function("matmul_tn_256_scalar_fallback", |b| {
        b.iter(|| {
            out256.fill(0.0);
            kernels::matmul_tn_acc_with(Isa::Scalar, &a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });
    c.bench_function("matmul_nt_256_scalar_fallback", |b| {
        b.iter(|| {
            kernels::matmul_nt_with(Isa::Scalar, &a256, &b256, &mut out256, 256, 256, 256);
            black_box(out256[0])
        });
    });

    // Sparsity-branch justification: dense vs one-hot inputs on both kernels.
    let dense64 = pattern(64 * 64, 1.0);
    let onehot64 = one_hot(64, 64);
    let w64 = pattern(64 * 64, 1.0);
    let mut out64 = vec![0.0f32; 64 * 64];
    c.bench_function("matmul_64_dense_blocked", |b| {
        b.iter(|| {
            kernels::matmul(&dense64, &w64, &mut out64, 64, 64, 64);
            black_box(out64[0])
        });
    });
    c.bench_function("matmul_64_dense_naive_with_skip", |b| {
        b.iter(|| {
            kernels::matmul_naive(&dense64, &w64, &mut out64, 64, 64, 64);
            black_box(out64[0])
        });
    });
    c.bench_function("matmul_64_onehot_blocked", |b| {
        b.iter(|| {
            kernels::matmul(&onehot64, &w64, &mut out64, 64, 64, 64);
            black_box(out64[0])
        });
    });
    c.bench_function("matmul_64_onehot_naive_with_skip", |b| {
        b.iter(|| {
            kernels::matmul_naive(&onehot64, &w64, &mut out64, 64, 64, 64);
            black_box(out64[0])
        });
    });
}

fn layer_benches(c: &mut Criterion) {
    c.bench_function("matmul_64x64", |b| {
        let a = Tensor::full(&[64, 64], 0.5);
        let m = Tensor::full(&[64, 64], 0.25);
        b.iter(|| black_box(a.matmul(&m)));
    });

    c.bench_function("matmul_into_64x64_no_alloc", |b| {
        let a = Tensor::full(&[64, 64], 0.5);
        let m = Tensor::full(&[64, 64], 0.25);
        let mut out = Tensor::zeros(&[64, 64]);
        b.iter(|| {
            a.matmul_into(&m, &mut out);
            black_box(out.data()[0])
        });
    });

    c.bench_function("small_cnn_gradient_batch32", |b| {
        let mut model = small_cnn(1, 8, 10, 0);
        let x = Tensor::full(&[32, 1, 8, 8], 0.3);
        let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
        b.iter(|| black_box(model.compute_gradient(&x, &y).unwrap()));
    });

    c.bench_function("table1_mnist_cnn_forward_batch4", |b| {
        let mut model = table1_mnist_cnn(0);
        let x = Tensor::full(&[4, 1, 28, 28], 0.3);
        b.iter(|| black_box(model.forward(&x).unwrap()));
    });

    c.bench_function("dense_mlp_gradient_batch100", |b| {
        let mut model = fleet_ml::models::mlp_classifier(64, &[64, 32], 10, 0);
        let x = Tensor::full(&[100, 64], 0.2);
        let y: Vec<usize> = (0..100).map(|i| i % 10).collect();
        b.iter(|| black_box(model.compute_gradient(&x, &y).unwrap()));
    });

    c.bench_function("gradient_add_scaled_100k", |b| {
        let mut acc = Gradient::zeros(100_000);
        let g = Gradient::from_vec(vec![0.1; 100_000]);
        b.iter(|| {
            acc.add_scaled(&g, 0.5);
            black_box(acc.as_slice()[0])
        });
    });

    c.bench_function("gradient_clip_100k", |b| {
        let g = Gradient::from_vec(vec![0.1; 100_000]);
        b.iter(|| {
            let mut copy = g.clone();
            black_box(copy.clip_l2(1.0))
        });
    });
}

criterion_group!(benches, matmul_benches, layer_benches);
criterion_main!(benches);
