//! Binary wire encoding of the worker/server protocol.
//!
//! The paper's implementation streams Kryo+Gzip-encoded objects between the
//! Android worker and the HTTP server. Here we provide an explicit,
//! dependency-free binary codec built on [`bytes`]: length-prefixed fields,
//! little-endian scalars, f32 slices packed raw. The format is versioned with
//! a one-byte tag so it can evolve.

use crate::protocol::{
    RejectionReason, ResultAck, ResultDisposition, TaskAssignment, TaskRequest, TaskResponse,
    TaskResult,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fleet_data::LabelDistribution;
use fleet_device::DeviceFeatures;
use fleet_ml::Gradient;
use std::error::Error;
use std::fmt;

/// Baseline wire-format version (requests, and results without a vector
/// clock).
const WIRE_VERSION: u8 = 1;

/// Wire-format version 2: a [`TaskResult`] carrying the per-shard vector
/// clock the worker observed at model-read time (`ApplyMode::PerShard`
/// servers attribute per-shard staleness from it). The encoder emits the
/// *oldest* version able to carry the message — results without a read
/// clock stay byte-identical to v1 — and the decoder accepts both.
const WIRE_VERSION_READ_CLOCK: u8 = 2;

/// Wire-format version 3: a [`TaskResult`] carrying the server-issued
/// `task_id` the worker echoes back for lease accounting and result
/// deduplication. Because the id may be present with or without a read
/// clock, v3 replaces v2's implicit clock with an explicit presence flag:
/// after `energy_pct` come a `u8` flag, the clock vector iff the flag is 1,
/// then the `u64` task id. As with v2, the encoder emits the oldest version
/// able to carry the message, so id-less results stay on v1/v2 bytes.
const WIRE_VERSION_TASK_ID: u8 = 3;

/// Wire-format version of the server→worker messages ([`TaskResponse`] and
/// [`ResultAck`]). These travelled in-process until the socket transport
/// (`crates/transport`) needed them on the wire, so they start their own
/// version line at 1; like the request/result codec, the format is
/// append-only and the version byte comes first.
const RESPONSE_WIRE_VERSION: u8 = 1;

/// Variant tag of [`TaskResponse::Assignment`].
const RESPONSE_TAG_ASSIGNMENT: u8 = 0;
/// Variant tag of [`TaskResponse::Rejected`].
const RESPONSE_TAG_REJECTED: u8 = 1;

/// Variant tags of [`RejectionReason`].
const REJECT_TAG_BATCH_TOO_SMALL: u8 = 0;
const REJECT_TAG_TOO_SIMILAR: u8 = 1;
const REJECT_TAG_OVERLOADED: u8 = 2;

/// Errors produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message was complete.
    UnexpectedEof,
    /// The version byte is not understood.
    UnsupportedVersion(u8),
    /// A length field exceeds sane bounds.
    LengthOutOfBounds(usize),
    /// A string field is not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of wire message"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::LengthOutOfBounds(len) => write!(f, "length field {len} out of bounds"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid utf-8"),
        }
    }
}

impl Error for WireError {}

/// Upper bound on any length-prefixed field, enforced symmetrically: the
/// decoder rejects longer length prefixes with [`WireError::LengthOutOfBounds`]
/// and the encoder panics rather than emit one (an unchecked `len as u32`
/// cast used to truncate silently, encoding corrupt messages for fields over
/// `u32::MAX` — and fields in `(MAX_FIELD_LEN, u32::MAX]` encoded fine but
/// could never be decoded).
pub const MAX_FIELD_LEN: usize = 64 * 1024 * 1024;

/// Validates a field length on the encode side, mirroring [`get_len`].
///
/// # Panics
///
/// Panics when `len` exceeds [`MAX_FIELD_LEN`]; encoding such a message can
/// only produce garbage (silent `u32` truncation) or an undecodable buffer.
pub(crate) fn checked_field_len(len: usize) -> u32 {
    assert!(
        len <= MAX_FIELD_LEN,
        "wire field length {len} exceeds MAX_FIELD_LEN {MAX_FIELD_LEN}; \
         the message would not survive the roundtrip"
    );
    len as u32
}

pub(crate) fn put_u64_slice(buf: &mut BytesMut, values: &[u64]) {
    buf.put_u32_le(checked_field_len(values.len()));
    for &v in values {
        buf.put_u64_le(v);
    }
}

pub(crate) fn get_u64_vec(buf: &mut Bytes) -> Result<Vec<u64>, WireError> {
    let len = get_len(buf)?;
    if buf.remaining() < len * 8 {
        return Err(WireError::UnexpectedEof);
    }
    Ok((0..len).map(|_| buf.get_u64_le()).collect())
}

pub(crate) fn put_f32_slice(buf: &mut BytesMut, values: &[f32]) {
    buf.put_u32_le(checked_field_len(values.len()));
    for &v in values {
        buf.put_f32_le(v);
    }
}

pub(crate) fn get_f32_vec(buf: &mut Bytes) -> Result<Vec<f32>, WireError> {
    let len = get_len(buf)?;
    if buf.remaining() < len * 4 {
        return Err(WireError::UnexpectedEof);
    }
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

/// Reads a probability vector and rebuilds the label distribution by scaling
/// to counts (sufficient precision for similarity computation).
///
/// A genuine encoding only ever carries finite probabilities in `[0, 1]`, so
/// anything else is rejected as corruption. The bound matters beyond hygiene:
/// an adversarial f32 would saturate the count conversion at `u64::MAX` and
/// overflow the total inside `LabelDistribution::from_counts`. After this
/// check each count is at most `1e6` and the vector at most [`MAX_FIELD_LEN`]
/// long, so the sum cannot overflow.
fn get_label_distribution(buf: &mut Bytes) -> Result<LabelDistribution, WireError> {
    let probabilities = get_f32_vec(buf)?;
    if probabilities.is_empty() {
        return Err(WireError::LengthOutOfBounds(0));
    }
    if let Some(bad) = probabilities
        .iter()
        .position(|p| !p.is_finite() || *p < 0.0 || *p > 1.0)
    {
        return Err(WireError::LengthOutOfBounds(bad));
    }
    let counts: Vec<u64> = probabilities
        .iter()
        .map(|p| (p * 1_000_000.0).round() as u64)
        .collect();
    Ok(LabelDistribution::from_counts(&counts))
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(checked_field_len(s.len()));
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    let len = get_len(buf)?;
    if buf.remaining() < len {
        return Err(WireError::UnexpectedEof);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
}

pub(crate) fn get_len(buf: &mut Bytes) -> Result<usize, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::UnexpectedEof);
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_FIELD_LEN {
        return Err(WireError::LengthOutOfBounds(len));
    }
    Ok(len)
}

pub(crate) fn need(buf: &Bytes, bytes: usize) -> Result<(), WireError> {
    if buf.remaining() < bytes {
        Err(WireError::UnexpectedEof)
    } else {
        Ok(())
    }
}

/// Encodes a [`TaskRequest`] into a byte buffer.
///
/// # Panics
///
/// Panics if a variable-length field (device model, label distribution)
/// exceeds [`MAX_FIELD_LEN`] — such a message could never decode.
pub fn encode_request(request: &TaskRequest) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(WIRE_VERSION);
    buf.put_u64_le(request.worker_id);
    put_str(&mut buf, &request.device_model);
    let f = &request.device_features;
    for v in [
        f.available_memory_mb,
        f.total_memory_mb,
        f.temperature_celsius,
        f.sum_max_freq_ghz,
        f.energy_per_cpu_second,
    ] {
        buf.put_f32_le(v);
    }
    put_f32_slice(&mut buf, request.label_distribution.as_slice());
    buf.put_u64_le(request.available_samples as u64);
    buf.freeze()
}

/// Decodes a [`TaskRequest`] from bytes produced by [`encode_request`].
///
/// # Errors
///
/// Returns a [`WireError`] when the buffer is truncated, has an unknown
/// version, or contains malformed fields.
pub fn decode_request(mut buf: Bytes) -> Result<TaskRequest, WireError> {
    need(&buf, 1)?;
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    need(&buf, 8)?;
    let worker_id = buf.get_u64_le();
    let device_model = get_string(&mut buf)?;
    need(&buf, 5 * 4)?;
    let device_features = DeviceFeatures {
        available_memory_mb: buf.get_f32_le(),
        total_memory_mb: buf.get_f32_le(),
        temperature_celsius: buf.get_f32_le(),
        sum_max_freq_ghz: buf.get_f32_le(),
        energy_per_cpu_second: buf.get_f32_le(),
    };
    let label_distribution = get_label_distribution(&mut buf)?;
    need(&buf, 8)?;
    let available_samples = buf.get_u64_le() as usize;
    Ok(TaskRequest {
        worker_id,
        device_model,
        device_features,
        label_distribution,
        available_samples,
    })
}

/// Encodes a [`TaskResult`] into a byte buffer.
///
/// # Panics
///
/// Panics if a variable-length field (gradient, label distribution) exceeds
/// [`MAX_FIELD_LEN`] — such a message could never decode.
pub fn encode_result(result: &TaskResult) -> Bytes {
    let mut buf = BytesMut::new();
    // Emit the oldest version able to carry the message: a result without a
    // read clock or task id is byte-identical to the v1 encoding, so v1
    // peers keep decoding everything a lockstep deployment produces.
    let version = if result.task_id.is_some() {
        WIRE_VERSION_TASK_ID
    } else if result.read_clock.is_some() {
        WIRE_VERSION_READ_CLOCK
    } else {
        WIRE_VERSION
    };
    buf.put_u8(version);
    buf.put_u64_le(result.worker_id);
    buf.put_u64_le(result.model_version);
    put_f32_slice(&mut buf, result.gradient.as_slice());
    put_f32_slice(&mut buf, result.label_distribution.as_slice());
    buf.put_u64_le(result.num_samples as u64);
    buf.put_f32_le(result.computation_seconds);
    buf.put_f32_le(result.energy_pct);
    match version {
        WIRE_VERSION_TASK_ID => {
            // v3: explicit clock-presence flag, then the id.
            match &result.read_clock {
                Some(read_clock) => {
                    buf.put_u8(1);
                    put_u64_slice(&mut buf, read_clock);
                }
                None => buf.put_u8(0),
            }
            buf.put_u64_le(
                result
                    .task_id
                    .expect("v3 is only chosen when task_id is set"),
            );
        }
        WIRE_VERSION_READ_CLOCK => {
            put_u64_slice(
                &mut buf,
                result
                    .read_clock
                    .as_ref()
                    .expect("v2 is only chosen when read_clock is set"),
            );
        }
        _ => {}
    }
    buf.freeze()
}

/// Decodes a [`TaskResult`] from bytes produced by [`encode_result`].
///
/// # Errors
///
/// Returns a [`WireError`] when the buffer is truncated, has an unknown
/// version, or contains malformed fields.
pub fn decode_result(mut buf: Bytes) -> Result<TaskResult, WireError> {
    need(&buf, 1)?;
    let version = buf.get_u8();
    if !matches!(
        version,
        WIRE_VERSION | WIRE_VERSION_READ_CLOCK | WIRE_VERSION_TASK_ID
    ) {
        return Err(WireError::UnsupportedVersion(version));
    }
    need(&buf, 16)?;
    let worker_id = buf.get_u64_le();
    let model_version = buf.get_u64_le();
    let gradient = Gradient::from_vec(get_f32_vec(&mut buf)?);
    let label_distribution = get_label_distribution(&mut buf)?;
    need(&buf, 8 + 4 + 4)?;
    let num_samples = buf.get_u64_le() as usize;
    let computation_seconds = buf.get_f32_le();
    let energy_pct = buf.get_f32_le();
    let (read_clock, task_id) = match version {
        WIRE_VERSION_TASK_ID => {
            need(&buf, 1)?;
            let read_clock = match buf.get_u8() {
                0 => None,
                1 => Some(get_u64_vec(&mut buf)?),
                flag => return Err(WireError::LengthOutOfBounds(flag as usize)),
            };
            need(&buf, 8)?;
            (read_clock, Some(buf.get_u64_le()))
        }
        WIRE_VERSION_READ_CLOCK => (Some(get_u64_vec(&mut buf)?), None),
        _ => (None, None),
    };
    Ok(TaskResult {
        worker_id,
        model_version,
        gradient,
        label_distribution,
        num_samples,
        computation_seconds,
        energy_pct,
        read_clock,
        task_id,
    })
}

/// Encodes a [`TaskAssignment`] into `buf` (the payload of a
/// [`TaskResponse::Assignment`]).
pub(crate) fn put_assignment(buf: &mut BytesMut, assignment: &TaskAssignment) {
    buf.put_u64_le(assignment.task_id);
    buf.put_u64_le(assignment.model_version);
    buf.put_u64_le(assignment.mini_batch_size as u64);
    put_f32_slice(buf, &assignment.model_parameters);
    put_u64_slice(buf, &assignment.shard_clocks);
}

/// Decodes a [`TaskAssignment`] written by [`put_assignment`].
pub(crate) fn get_assignment(buf: &mut Bytes) -> Result<TaskAssignment, WireError> {
    need(buf, 3 * 8)?;
    let task_id = buf.get_u64_le();
    let model_version = buf.get_u64_le();
    let mini_batch_size = buf.get_u64_le() as usize;
    let model_parameters = get_f32_vec(buf)?;
    let shard_clocks = get_u64_vec(buf)?;
    Ok(TaskAssignment {
        task_id,
        model_parameters,
        model_version,
        shard_clocks,
        mini_batch_size,
    })
}

/// Encodes a [`TaskResponse`] (steps 2–4 of Fig. 2 as the server ships them
/// back over a socket).
///
/// # Panics
///
/// Panics if the assignment's parameter vector exceeds [`MAX_FIELD_LEN`] —
/// such a message could never decode.
pub fn encode_response(response: &TaskResponse) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(RESPONSE_WIRE_VERSION);
    match response {
        TaskResponse::Assignment(assignment) => {
            buf.put_u8(RESPONSE_TAG_ASSIGNMENT);
            put_assignment(&mut buf, assignment);
        }
        TaskResponse::Rejected(reason) => {
            buf.put_u8(RESPONSE_TAG_REJECTED);
            match *reason {
                RejectionReason::BatchTooSmall { proposed, minimum } => {
                    buf.put_u8(REJECT_TAG_BATCH_TOO_SMALL);
                    buf.put_u64_le(proposed as u64);
                    buf.put_u64_le(minimum as u64);
                }
                RejectionReason::TooSimilar => buf.put_u8(REJECT_TAG_TOO_SIMILAR),
                RejectionReason::Overloaded { shard } => {
                    buf.put_u8(REJECT_TAG_OVERLOADED);
                    buf.put_u64_le(shard as u64);
                }
            }
        }
    }
    buf.freeze()
}

/// Decodes a [`TaskResponse`] from bytes produced by [`encode_response`].
///
/// # Errors
///
/// Returns a [`WireError`] when the buffer is truncated, has an unknown
/// version, or carries an unknown variant tag (reported as
/// [`WireError::LengthOutOfBounds`] with the offending tag, matching the v3
/// clock-flag idiom).
pub fn decode_response(mut buf: Bytes) -> Result<TaskResponse, WireError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if version != RESPONSE_WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    match buf.get_u8() {
        RESPONSE_TAG_ASSIGNMENT => Ok(TaskResponse::Assignment(get_assignment(&mut buf)?)),
        RESPONSE_TAG_REJECTED => {
            need(&buf, 1)?;
            let reason = match buf.get_u8() {
                REJECT_TAG_BATCH_TOO_SMALL => {
                    need(&buf, 16)?;
                    RejectionReason::BatchTooSmall {
                        proposed: buf.get_u64_le() as usize,
                        minimum: buf.get_u64_le() as usize,
                    }
                }
                REJECT_TAG_TOO_SIMILAR => RejectionReason::TooSimilar,
                REJECT_TAG_OVERLOADED => {
                    need(&buf, 8)?;
                    RejectionReason::Overloaded {
                        shard: buf.get_u64_le() as usize,
                    }
                }
                tag => return Err(WireError::LengthOutOfBounds(tag as usize)),
            };
            Ok(TaskResponse::Rejected(reason))
        }
        tag => Err(WireError::LengthOutOfBounds(tag as usize)),
    }
}

/// Encodes a [`ResultAck`] (the server's step-5 acknowledgement).
pub fn encode_ack(ack: &ResultAck) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(RESPONSE_WIRE_VERSION);
    buf.put_u64_le(ack.staleness);
    // The bytes shim carries no f64 accessors; ship the raw IEEE bits.
    buf.put_u64_le(ack.scaling_factor.to_bits());
    buf.put_u8(ack.model_updated as u8);
    buf.put_u64_le(ack.clock);
    buf.put_u8(match ack.disposition {
        ResultDisposition::Applied => 0,
        ResultDisposition::Duplicate => 1,
        ResultDisposition::Expired => 2,
        ResultDisposition::Unsolicited => 3,
    });
    buf.freeze()
}

/// Decodes a [`ResultAck`] from bytes produced by [`encode_ack`].
///
/// # Errors
///
/// Returns a [`WireError`] when the buffer is truncated, has an unknown
/// version, or carries an out-of-range flag or disposition byte (reported as
/// [`WireError::LengthOutOfBounds`] with the offending byte).
pub fn decode_ack(mut buf: Bytes) -> Result<ResultAck, WireError> {
    need(&buf, 1)?;
    let version = buf.get_u8();
    if version != RESPONSE_WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    need(&buf, 8 + 8 + 1 + 8 + 1)?;
    let staleness = buf.get_u64_le();
    let scaling_factor = f64::from_bits(buf.get_u64_le());
    let model_updated = match buf.get_u8() {
        0 => false,
        1 => true,
        flag => return Err(WireError::LengthOutOfBounds(flag as usize)),
    };
    let clock = buf.get_u64_le();
    let disposition = match buf.get_u8() {
        0 => ResultDisposition::Applied,
        1 => ResultDisposition::Duplicate,
        2 => ResultDisposition::Expired,
        3 => ResultDisposition::Unsolicited,
        tag => return Err(WireError::LengthOutOfBounds(tag as usize)),
    };
    Ok(ResultAck {
        staleness,
        scaling_factor,
        model_updated,
        clock,
        disposition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_request() -> TaskRequest {
        TaskRequest {
            worker_id: 42,
            device_model: "Galaxy S7".to_string(),
            device_features: DeviceFeatures::default(),
            label_distribution: LabelDistribution::from_labels(&[0, 1, 1, 3], 5),
            available_samples: 220,
        }
    }

    fn sample_result() -> TaskResult {
        TaskResult {
            worker_id: 42,
            model_version: 17,
            gradient: Gradient::from_vec(vec![0.25, -0.5, 1.0]),
            label_distribution: LabelDistribution::from_labels(&[2, 2, 4], 5),
            num_samples: 3,
            computation_seconds: 2.75,
            energy_pct: 0.06,
            read_clock: None,
            task_id: None,
        }
    }

    #[test]
    fn request_roundtrip() {
        let original = sample_request();
        let decoded = decode_request(encode_request(&original)).unwrap();
        assert_eq!(decoded.worker_id, original.worker_id);
        assert_eq!(decoded.device_model, original.device_model);
        assert_eq!(decoded.available_samples, original.available_samples);
        for (a, b) in decoded
            .label_distribution
            .as_slice()
            .iter()
            .zip(original.label_distribution.as_slice())
        {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn out_of_domain_probabilities_are_rejected_not_summed() {
        // Corrupted-in-flight label distributions used to reach
        // `LabelDistribution::from_counts` as saturated u64 counts and
        // overflow its total; the decoder must reject them instead. Patch
        // each probability slot of a valid encoding in turn.
        let valid = encode_request(&sample_request()).to_vec();
        let dist_len = sample_request().label_distribution.as_slice().len();
        // version(1) + worker_id(8) + model(4 + 9) + features(5*4) + vec len(4)
        let first_prob = 1 + 8 + 4 + "Galaxy S7".len() + 5 * 4 + 4;
        for bad in [f32::MAX, f32::INFINITY, f32::NAN, -0.5, 1.5] {
            for slot in 0..dist_len {
                let mut raw = valid.clone();
                let at = first_prob + slot * 4;
                raw[at..at + 4].copy_from_slice(&bad.to_le_bytes());
                assert!(
                    matches!(
                        decode_request(Bytes::from(raw)),
                        Err(WireError::LengthOutOfBounds(_))
                    ),
                    "probability {bad} in slot {slot} must be rejected"
                );
            }
        }
        // In-range probabilities (the real encoding) still decode.
        assert!(decode_request(Bytes::from(valid)).is_ok());
    }

    #[test]
    fn result_roundtrip() {
        let original = sample_result();
        let decoded = decode_result(encode_result(&original)).unwrap();
        assert_eq!(decoded.gradient, original.gradient);
        assert_eq!(decoded.model_version, original.model_version);
        assert_eq!(decoded.num_samples, original.num_samples);
        assert!((decoded.computation_seconds - original.computation_seconds).abs() < 1e-6);
        assert_eq!(decoded.read_clock, None);
        // A read-clock-free result stays on the v1 wire format, byte for
        // byte, so peers that predate vector clocks keep decoding it.
        assert_eq!(encode_result(&original).to_vec()[0], WIRE_VERSION);
    }

    #[test]
    fn result_with_read_clock_roundtrips_as_v2() {
        let mut original = sample_result();
        original.read_clock = Some(vec![17, 15, 18, 17]);
        let encoded = encode_result(&original);
        assert_eq!(encoded.to_vec()[0], WIRE_VERSION_READ_CLOCK);
        let decoded = decode_result(encoded).unwrap();
        assert_eq!(decoded.read_clock, original.read_clock);
        assert_eq!(decoded.gradient, original.gradient);

        // An *empty* vector clock is still "present" (v2), distinct from a
        // v1 result with no clock at all.
        original.read_clock = Some(Vec::new());
        let decoded = decode_result(encode_result(&original)).unwrap();
        assert_eq!(decoded.read_clock, Some(Vec::new()));
    }

    #[test]
    fn result_with_task_id_roundtrips_as_v3() {
        let mut original = sample_result();
        original.task_id = Some(7_341);
        // Without a read clock: flag byte 0, then the id.
        let encoded = encode_result(&original);
        assert_eq!(encoded.to_vec()[0], WIRE_VERSION_TASK_ID);
        let decoded = decode_result(encoded).unwrap();
        assert_eq!(decoded.task_id, Some(7_341));
        assert_eq!(decoded.read_clock, None);
        assert_eq!(decoded.gradient, original.gradient);

        // With a read clock: flag byte 1, clock vector, then the id.
        original.read_clock = Some(vec![4, 2, 4, 4]);
        let decoded = decode_result(encode_result(&original)).unwrap();
        assert_eq!(decoded.task_id, Some(7_341));
        assert_eq!(decoded.read_clock, Some(vec![4, 2, 4, 4]));

        // task_id 0 is a valid id, still v3 — `Some(0)` must not collapse
        // into "absent".
        original.task_id = Some(0);
        original.read_clock = None;
        let encoded = encode_result(&original);
        assert_eq!(encoded.to_vec()[0], WIRE_VERSION_TASK_ID);
        assert_eq!(decode_result(encoded).unwrap().task_id, Some(0));
    }

    #[test]
    fn id_less_results_stay_on_pre_v3_bytes() {
        // The codec bumps only when the new field is present: the id-less
        // encodings must remain byte-identical to what a pre-v3 build emits.
        let mut result = sample_result();
        assert_eq!(encode_result(&result).to_vec()[0], WIRE_VERSION);
        result.read_clock = Some(vec![1, 2]);
        assert_eq!(encode_result(&result).to_vec()[0], WIRE_VERSION_READ_CLOCK);
    }

    #[test]
    fn v3_bad_clock_flag_is_rejected() {
        let mut result = sample_result();
        result.task_id = Some(5);
        let mut raw = encode_result(&result).to_vec();
        // The flag byte sits 9 bytes from the end (flag + u64 id).
        let flag_offset = raw.len() - 9;
        raw[flag_offset] = 2;
        assert!(decode_result(Bytes::from(raw)).is_err());
    }

    #[test]
    fn v3_truncation_errors_at_every_offset() {
        // Both v3 shapes: with and without the optional clock vector.
        let mut result = sample_result();
        result.task_id = Some(99);
        for read_clock in [None, Some(vec![3u64, 1, 4])] {
            result.read_clock = read_clock;
            let encoded = encode_result(&result);
            for cut in 0..encoded.len() {
                assert!(
                    decode_result(encoded.slice(0..cut)).is_err(),
                    "v3 result cut at {cut} should fail"
                );
            }
        }
    }

    #[test]
    fn v2_truncation_errors_at_every_offset() {
        let mut result = sample_result();
        result.read_clock = Some(vec![3, 1, 4, 1, 5]);
        let encoded = encode_result(&result);
        for cut in 0..encoded.len() {
            assert!(
                decode_result(encoded.slice(0..cut)).is_err(),
                "v2 result cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn truncated_buffers_error_cleanly_at_every_field_offset() {
        // Every proper prefix — i.e. a truncation inside any field, length
        // prefix or scalar — must produce an error, never a panic or a
        // bogus decode.
        let encoded_request = encode_request(&sample_request());
        for cut in 0..encoded_request.len() {
            let partial = encoded_request.slice(0..cut);
            assert!(
                decode_request(partial).is_err(),
                "request cut at {cut} should fail"
            );
        }
        let encoded_result = encode_result(&sample_result());
        for cut in 0..encoded_result.len() {
            let partial = encoded_result.slice(0..cut);
            assert!(
                decode_result(partial).is_err(),
                "result cut at {cut} should fail"
            );
        }
    }

    fn sample_assignment() -> TaskAssignment {
        TaskAssignment {
            task_id: 9_001,
            model_parameters: vec![0.5, -1.25, 3.75, 0.0],
            model_version: 12,
            shard_clocks: vec![12, 11, 12],
            mini_batch_size: 96,
        }
    }

    fn sample_ack() -> ResultAck {
        ResultAck {
            staleness: 3,
            scaling_factor: 0.625,
            model_updated: true,
            clock: 41,
            disposition: ResultDisposition::Applied,
        }
    }

    #[test]
    fn response_assignment_roundtrips_exactly() {
        // The assignment's f32 parameters must survive bit-for-bit — the
        // socket transport's digest parity depends on it.
        let original = TaskResponse::Assignment(sample_assignment());
        let decoded = decode_response(encode_response(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn response_rejections_roundtrip() {
        for reason in [
            RejectionReason::BatchTooSmall {
                proposed: 3,
                minimum: 16,
            },
            RejectionReason::TooSimilar,
            RejectionReason::Overloaded { shard: 5 },
        ] {
            let original = TaskResponse::Rejected(reason);
            assert_eq!(
                decode_response(encode_response(&original)).unwrap(),
                original
            );
        }
    }

    #[test]
    fn ack_roundtrips_for_every_disposition() {
        for disposition in [
            ResultDisposition::Applied,
            ResultDisposition::Duplicate,
            ResultDisposition::Expired,
            ResultDisposition::Unsolicited,
        ] {
            let mut original = sample_ack();
            original.disposition = disposition;
            original.model_updated = disposition == ResultDisposition::Applied;
            assert_eq!(decode_ack(encode_ack(&original)).unwrap(), original);
        }
    }

    #[test]
    fn response_and_ack_reject_unknown_versions_and_tags() {
        let mut raw =
            encode_response(&TaskResponse::Rejected(RejectionReason::TooSimilar)).to_vec();
        raw[0] = 99;
        assert_eq!(
            decode_response(Bytes::from(raw.clone())),
            Err(WireError::UnsupportedVersion(99))
        );
        raw[0] = RESPONSE_WIRE_VERSION;
        raw[1] = 7; // unknown variant tag
        assert!(decode_response(Bytes::from(raw.clone())).is_err());
        raw[1] = RESPONSE_TAG_REJECTED;
        raw[2] = 9; // unknown rejection tag
        assert!(decode_response(Bytes::from(raw)).is_err());

        let mut ack_raw = encode_ack(&sample_ack()).to_vec();
        ack_raw[0] = 42;
        assert_eq!(
            decode_ack(Bytes::from(ack_raw.clone())),
            Err(WireError::UnsupportedVersion(42))
        );
        ack_raw[0] = RESPONSE_WIRE_VERSION;
        let flag_offset = 1 + 8 + 8;
        ack_raw[flag_offset] = 2; // model_updated must be 0 or 1
        assert!(decode_ack(Bytes::from(ack_raw.clone())).is_err());
        ack_raw[flag_offset] = 1;
        let last = ack_raw.len() - 1;
        ack_raw[last] = 4; // disposition out of range
        assert!(decode_ack(Bytes::from(ack_raw)).is_err());
    }

    #[test]
    fn response_truncation_errors_at_every_offset() {
        let shapes = [
            TaskResponse::Assignment(sample_assignment()),
            TaskResponse::Rejected(RejectionReason::BatchTooSmall {
                proposed: 1,
                minimum: 2,
            }),
            TaskResponse::Rejected(RejectionReason::TooSimilar),
            TaskResponse::Rejected(RejectionReason::Overloaded { shard: 0 }),
        ];
        for original in shapes {
            let encoded = encode_response(&original);
            for cut in 0..encoded.len() {
                assert!(
                    decode_response(encoded.slice(0..cut)).is_err(),
                    "response {original:?} cut at {cut} should fail"
                );
            }
        }
    }

    #[test]
    fn ack_truncation_errors_at_every_offset() {
        let encoded = encode_ack(&sample_ack());
        for cut in 0..encoded.len() {
            assert!(
                decode_ack(encoded.slice(0..cut)).is_err(),
                "ack cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn empty_gradient_roundtrips() {
        let mut result = sample_result();
        result.gradient = Gradient::from_vec(Vec::new());
        let decoded = decode_result(encode_result(&result)).unwrap();
        assert!(decoded.gradient.is_empty());
        assert_eq!(decoded.num_samples, result.num_samples);
    }

    #[test]
    fn empty_device_model_roundtrips() {
        let mut request = sample_request();
        request.device_model = String::new();
        let decoded = decode_request(encode_request(&request)).unwrap();
        assert_eq!(decoded.device_model, "");
    }

    #[test]
    fn checked_field_len_accepts_the_bound_and_zero() {
        assert_eq!(checked_field_len(0), 0);
        assert_eq!(checked_field_len(MAX_FIELD_LEN), MAX_FIELD_LEN as u32);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FIELD_LEN")]
    fn checked_field_len_rejects_over_the_bound() {
        let _ = checked_field_len(MAX_FIELD_LEN + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FIELD_LEN")]
    fn encoding_an_oversized_string_panics_instead_of_truncating() {
        // Before the encode-side check, `len as u32` silently truncated and
        // the message encoded corrupt; now it panics with a clear error.
        let mut request = sample_request();
        request.device_model = "x".repeat(MAX_FIELD_LEN + 1);
        let _ = encode_request(&request);
    }

    #[test]
    fn decoder_rejects_lengths_just_over_the_bound() {
        let mut raw = BytesMut::new();
        raw.put_u8(WIRE_VERSION);
        raw.put_u64_le(1); // worker id
        raw.put_u32_le(MAX_FIELD_LEN as u32 + 1); // device-model length
        assert_eq!(
            decode_request(raw.freeze()),
            Err(WireError::LengthOutOfBounds(MAX_FIELD_LEN + 1))
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(99);
        raw.put_u64_le(0);
        assert_eq!(
            decode_request(raw.freeze()),
            Err(WireError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(WIRE_VERSION);
        raw.put_u64_le(1); // worker id
        raw.put_u32_le(u32::MAX); // absurd string length
        assert!(matches!(
            decode_request(raw.freeze()),
            Err(WireError::LengthOutOfBounds(_)) | Err(WireError::UnexpectedEof)
        ));
    }

    proptest! {
        #[test]
        fn prop_result_roundtrip(gradient in proptest::collection::vec(-10.0f32..10.0, 0..128),
                                 version in 0u64..10_000,
                                 samples in 1usize..10_000,
                                 read_clock in proptest::option::of(
                                     proptest::collection::vec(0u64..1_000, 0..16)),
                                 task_id in proptest::option::of(any::<u64>())) {
            let original = TaskResult {
                worker_id: 7,
                model_version: version,
                gradient: Gradient::from_vec(gradient),
                label_distribution: LabelDistribution::uniform(8),
                num_samples: samples,
                computation_seconds: 1.5,
                energy_pct: 0.01,
                read_clock,
                task_id,
            };
            let decoded = decode_result(encode_result(&original)).unwrap();
            prop_assert_eq!(decoded.gradient, original.gradient);
            prop_assert_eq!(decoded.model_version, original.model_version);
            prop_assert_eq!(decoded.num_samples, original.num_samples);
            prop_assert_eq!(decoded.read_clock, original.read_clock);
            prop_assert_eq!(decoded.task_id, original.task_id);
        }

        #[test]
        fn prop_random_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_request(Bytes::from(raw.clone()));
            let _ = decode_result(Bytes::from(raw.clone()));
            let _ = decode_response(Bytes::from(raw.clone()));
            let _ = decode_ack(Bytes::from(raw));
        }

        #[test]
        fn prop_response_roundtrip(params in proptest::collection::vec(-10.0f32..10.0, 0..128),
                                   task_id in any::<u64>(),
                                   version in 0u64..10_000,
                                   batch in 1usize..10_000,
                                   clocks in proptest::collection::vec(0u64..1_000, 0..16)) {
            let original = TaskResponse::Assignment(TaskAssignment {
                task_id,
                model_parameters: params,
                model_version: version,
                shard_clocks: clocks,
                mini_batch_size: batch,
            });
            let decoded = decode_response(encode_response(&original)).unwrap();
            prop_assert_eq!(decoded, original);
        }

        #[test]
        fn prop_response_truncation_errors(params in proptest::collection::vec(-1.0f32..1.0, 0..32),
                                           cut_seed in any::<u16>()) {
            let mut assignment = sample_assignment();
            assignment.model_parameters = params;
            let encoded = encode_response(&TaskResponse::Assignment(assignment));
            let cut = cut_seed as usize % encoded.len();
            prop_assert!(decode_response(encoded.slice(0..cut)).is_err());
        }

        #[test]
        fn prop_ack_roundtrip(staleness in any::<u64>(),
                              scaling in -1.0f64..1.0,
                              updated in any::<bool>(),
                              clock in any::<u64>()) {
            let original = ResultAck {
                staleness,
                scaling_factor: scaling,
                model_updated: updated,
                clock,
                disposition: ResultDisposition::Applied,
            };
            let decoded = decode_ack(encode_ack(&original)).unwrap();
            prop_assert_eq!(decoded, original);
        }

        #[test]
        fn prop_request_roundtrips_any_device_model(model_len in 0usize..64, samples in 0usize..1_000_000) {
            let mut request = sample_request();
            request.device_model = "m".repeat(model_len);
            request.available_samples = samples;
            let decoded = decode_request(encode_request(&request)).unwrap();
            prop_assert_eq!(decoded.device_model, request.device_model);
            prop_assert_eq!(decoded.available_samples, samples);
        }

        #[test]
        fn prop_truncation_of_random_results_errors(gradient in proptest::collection::vec(-1.0f32..1.0, 0..32), cut_seed in any::<u16>()) {
            let mut result = sample_result();
            result.gradient = Gradient::from_vec(gradient);
            let encoded = encode_result(&result);
            let cut = cut_seed as usize % encoded.len();
            prop_assert!(decode_result(encoded.slice(0..cut)).is_err());
        }
    }
}
