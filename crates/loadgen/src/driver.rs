//! The open-loop driver: replays a [`Schedule`] against a live transport
//! endpoint through real [`WorkerClient`] connections.
//!
//! The schedule fixes *what* happens and in which order; the driver only
//! decides *when* in wall-clock terms. With `time_scale = 0` (the CI
//! setting) events fire back-to-back and the run measures pure service
//! capacity; with `time_scale = 1` the virtual timeline is replayed in
//! real time. Pacing reads time exclusively through the telemetry sink
//! ([`TelemetrySink::now_ns`]) — the driver itself never touches the wall
//! clock, keeping `crates/loadgen` outside the fleet-lint wall-clock
//! waiver.
//!
//! Workers are partitioned over connections by `worker % connections`;
//! each connection thread replays its own workers' events in schedule
//! order. A worker's operations are sequential by construction (its
//! `seq`-th submit precedes its `seq+1`-th request in virtual time), so
//! one in-flight assignment slot per worker is enough.

use crate::schedule::{EventKind, Schedule};
use fleet_server::protocol::{RejectionReason, TaskAssignment, TaskResponse};
use fleet_server::Worker;
use fleet_telemetry::TelemetrySink;
use fleet_transport::{ClientConfig, Endpoint, WorkerClient};
use std::sync::Arc;

/// Knobs of one driver run.
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Concurrent client connections the fleet is multiplexed over.
    pub connections: usize,
    /// Wall-clock nanoseconds per virtual nanosecond; `0` disables pacing
    /// (events fire as fast as the server absorbs them).
    pub time_scale: f64,
}

impl Default for DriveOptions {
    fn default() -> Self {
        DriveOptions {
            connections: 8,
            time_scale: 0.0,
        }
    }
}

/// Protocol-level outcome counts of one driver run, summed over all
/// connections. Wire-level latency distributions live in the telemetry
/// sink, not here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Requests sent.
    pub requests: u64,
    /// Requests answered with an assignment.
    pub assignments: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected_overloaded: u64,
    /// Requests rejected for any other reason.
    pub rejected_other: u64,
    /// Results uploaded.
    pub submits: u64,
    /// Uploaded results the server applied.
    pub applied: u64,
    /// Uploaded results the server discarded (duplicate/expired/unsolicited).
    pub discarded: u64,
    /// Scheduled submits skipped because their request was rejected.
    pub skipped_submits: u64,
    /// Transport-level failures (the connection's remaining events are
    /// abandoned when this is non-zero).
    pub transport_errors: u64,
}

impl DriveStats {
    fn absorb(&mut self, other: &DriveStats) {
        self.requests += other.requests;
        self.assignments += other.assignments;
        self.rejected_overloaded += other.rejected_overloaded;
        self.rejected_other += other.rejected_other;
        self.submits += other.submits;
        self.applied += other.applied;
        self.discarded += other.discarded;
        self.skipped_submits += other.skipped_submits;
        self.transport_errors += other.transport_errors;
    }
}

/// One connection thread's share of the fleet.
struct Lane {
    client: WorkerClient,
    /// `(fleet index, worker)`, sorted by fleet index.
    workers: Vec<(u32, Worker)>,
    /// In-flight assignment per local worker (same order as `workers`).
    pending: Vec<Option<TaskAssignment>>,
}

impl Lane {
    fn local_index(&self, worker: u32) -> Option<usize> {
        self.workers.binary_search_by_key(&worker, |w| w.0).ok()
    }
}

/// Replays `schedule` against `endpoint`, consuming the fleet.
///
/// `sink` powers both pacing and client-side latency telemetry; pass the
/// same recorder the server side reports into to get one coherent
/// timeline. The fleet must contain exactly `schedule.spec().workers`
/// workers, fleet index == worker id order.
pub fn drive(
    endpoint: &Endpoint,
    schedule: &Schedule,
    fleet: Vec<Worker>,
    sink: Arc<dyn TelemetrySink>,
    options: &DriveOptions,
) -> DriveStats {
    assert_eq!(
        fleet.len(),
        schedule.spec().workers,
        "fleet size must match the schedule's worker count"
    );
    let connections = options.connections.max(1).min(fleet.len().max(1));

    // Partition workers and their events over the connections.
    let mut lanes: Vec<Lane> = (0..connections)
        .map(|_| Lane {
            client: WorkerClient::with_config(
                endpoint.clone(),
                ClientConfig {
                    telemetry: fleet_telemetry::TelemetryHandle::new(Arc::clone(&sink)),
                    ..ClientConfig::default()
                },
            ),
            workers: Vec::new(),
            pending: Vec::new(),
        })
        .collect();
    for (index, worker) in fleet.into_iter().enumerate() {
        let lane = &mut lanes[index % connections];
        lane.workers.push((index as u32, worker));
        lane.pending.push(None);
    }
    let mut lane_events: Vec<Vec<crate::schedule::Event>> = vec![Vec::new(); connections];
    for event in schedule.events() {
        lane_events[event.worker as usize % connections].push(*event);
    }

    let started = sink.now_ns();
    let time_scale = options.time_scale;
    let batch_cap = schedule.spec().batch_size;
    let stats: Vec<DriveStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .into_iter()
            .zip(lane_events)
            .map(|(lane, events)| {
                let sink = Arc::clone(&sink);
                scope.spawn(move || run_lane(lane, events, sink, started, time_scale, batch_cap))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("lane thread"))
            .collect()
    });

    let mut total = DriveStats::default();
    for s in &stats {
        total.absorb(s);
    }
    total
}

fn run_lane(
    mut lane: Lane,
    events: Vec<crate::schedule::Event>,
    sink: Arc<dyn TelemetrySink>,
    started: u64,
    time_scale: f64,
    batch_cap: usize,
) -> DriveStats {
    let mut stats = DriveStats::default();
    for event in events {
        if time_scale > 0.0 {
            // Replay the virtual timeline scaled into wall time. The sink
            // owns the clock; the driver only diffs its readings.
            let target = (event.at_ns as f64 * time_scale) as u64;
            loop {
                let elapsed = sink.now_ns().saturating_sub(started);
                if elapsed >= target {
                    break;
                }
                let wait = (target - elapsed).min(5_000_000);
                std::thread::sleep(std::time::Duration::from_nanos(wait));
            }
        }
        let local = lane
            .local_index(event.worker)
            .expect("event routed to the lane owning its worker");
        match event.kind {
            EventKind::Request => {
                let request = lane.workers[local].1.request();
                stats.requests += 1;
                match lane.client.request(&request) {
                    Ok(TaskResponse::Assignment(mut assignment)) => {
                        stats.assignments += 1;
                        // The schedule's device model simulated the spec's
                        // batch size; cap I-Prof's proposal to match so the
                        // replayed computation is the one that was scheduled.
                        assignment.mini_batch_size = assignment.mini_batch_size.min(batch_cap);
                        lane.pending[local] = Some(assignment);
                    }
                    Ok(TaskResponse::Rejected(RejectionReason::Overloaded { .. })) => {
                        stats.rejected_overloaded += 1;
                    }
                    Ok(TaskResponse::Rejected(_)) => {
                        stats.rejected_other += 1;
                    }
                    Err(_) => {
                        stats.transport_errors += 1;
                        return stats;
                    }
                }
            }
            EventKind::Submit => {
                let Some(assignment) = lane.pending[local].take() else {
                    stats.skipped_submits += 1;
                    continue;
                };
                let raw = match lane.workers[local].1.execute_wire(&assignment) {
                    Ok(raw) => raw.to_vec(),
                    Err(_) => {
                        stats.skipped_submits += 1;
                        continue;
                    }
                };
                stats.submits += 1;
                match lane.client.submit_raw(&raw) {
                    Ok(ack) => {
                        if ack.disposition == fleet_server::ResultDisposition::Applied {
                            stats.applied += 1;
                        } else {
                            stats.discarded += 1;
                        }
                    }
                    Err(_) => {
                        stats.transport_errors += 1;
                        return stats;
                    }
                }
            }
        }
    }
    lane.client.disconnect();
    stats
}
