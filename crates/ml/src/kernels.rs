//! Blocked, parallel `f32` matrix kernels — the hot path of every FLeet
//! worker gradient computation — with an explicit-SIMD micro-kernel engine
//! dispatched at runtime.
//!
//! # Design
//!
//! All kernels operate on caller-owned raw slices (no allocation) and come in
//! the layouts the layers need, so transposes are never materialised:
//!
//! * [`matmul`] — `C = A·B` (`A: [m,k]`, `B: [k,n]`): dense and im2col-conv
//!   forward.
//! * [`matmul_tn_acc`] — `C += Aᵀ·B` (`A: [k,m]`, `B: [k,n]`): weight
//!   gradients, accumulating directly into the layer's gradient buffer.
//! * [`matmul_nt`] / [`matmul_nt_acc`] — `C = A·Bᵀ` / `C += A·Bᵀ`
//!   (`A: [m,k]`, `B: [n,k]`): input gradients, and the im2col conv weight
//!   gradient (which accumulates `dY · colsᵀ` straight into the layer
//!   buffer).
//!
//! All layouts run the same `MR × NR` register-tiled micro-kernel (partial
//! sums held in registers, remainders falling back to row-axpy loops); the
//! accumulating variants seed the tile registers from the existing output,
//! so every element stays one fused chain. Work is split across threads by
//! contiguous output rows via [`fleet_parallel::parallel_chunks_mut`].
//!
//! # B-panel packing
//!
//! When a chunk sweeps at least `PACK_MIN_GROUPS` full `MR`-row groups, the
//! NN kernel first copies each `NR`-wide column panel of `B` into a
//! contiguous `[k × NR]` thread-local buffer and runs the
//! whole row sweep against the packed panel: the panel is loaded once from
//! strided memory and then reread `rows / MR` times from L1 with unit stride.
//! Packing is a pure *layout* change — the tile performs the identical fused
//! operations in the identical order — so the packed and unpacked paths are
//! bit-for-bit interchangeable and the gate can key on chunk size freely.
//!
//! The NT kernels pack the *transposed* `B` rows into the same `[k × NR]`
//! panel shape and then reuse the NN micro-kernel unchanged. This replaces
//! the former blocked-dot-product formulation (which re-streamed all of `B`
//! for every output row) with the register-tiled sweep, lifting NT off its
//! memory-bandwidth plateau. Products with `m < NT_PACK_MIN_ROWS` keep
//! the blocked-dot formulation: there are not enough row sweeps to amortise
//! the panel transpose. The branch keys on the full `m` — never the
//! per-chunk partition — so the numeric structure of each output element is
//! a function of the shape alone.
//!
//! # The SIMD engine and its determinism contract
//!
//! Each micro-kernel exists in two [`Isa`] variants selected once per process
//! (see [`Isa::active`]): an AVX2+FMA implementation in `core::arch`
//! intrinsics, used when `is_x86_feature_detected!` reports both features,
//! and a portable fallback that applies `f32::mul_add` to the *same* lane
//! structure. A fused multiply-add rounds once per element, identically
//! whether it is issued as a `vfmadd` instruction or as `mul_add` (which
//! lowers to the correctly-rounded libm `fma` where hardware FMA is absent),
//! and every output element accumulates over the depth dimension in
//! ascending order regardless of how tiles or threads partition the output —
//! so results are **bit-for-bit identical across ISAs and thread counts**.
//! The property tests at the bottom of this file assert that byte-identity on
//! dense, one-hot, NaN/Inf and remainder-sized shapes; the simulation's
//! reproducibility tests depend on it. Keep both paths in lockstep: any lane
//! restructured on one side must be restructured on the other.
//!
//! Set `FLEET_SIMD=off` (or `0`/`scalar`/`false`) to force the fallback at
//! runtime — CI sweeps the determinism digests both ways and they must agree.
//!
//! # The seed kernel's sparsity branch
//!
//! The original kernel skipped inner-loop work when `a == 0.0`. That branch
//! pays off only for one-hot-ish inputs (e.g. the recommender's bag-of-words
//! rows) and costs a compare per `(i,p)` pair plus vectorisation-hostile
//! control flow on the dense matrices that dominate this workload, so the
//! dense path no longer has it. [`matmul_naive`] preserves the seed kernel
//! verbatim for benchmarking (`cargo bench --bench ml_kernels` reports both on
//! dense and one-hot inputs) and as the reference implementation the property
//! tests compare against. Note the naive kernel multiplies and adds in two
//! rounding steps, so the fused kernels agree with it to tolerance, not bits.

use std::cell::RefCell;
use std::sync::OnceLock;

/// Output rows per register tile. Six rows × two AVX2 vectors is the classic
/// f32 micro-kernel shape: `6 × 2 = 12` accumulator registers plus two `B`
/// lanes and one broadcast fit the 16 ymm registers exactly, and twelve
/// independent FMA chains cover the 4-5 cycle FMA latency at two issues per
/// cycle — with the old `MR = 4` the eight chains left the FMA units
/// latency-starved.
const MR: usize = 6;

/// Output columns per register tile: `MR × NR` partial sums live in
/// registers, cutting the traffic to `out` by `MR·NR` and reusing every
/// loaded `B` lane `MR` times. A `k × NR` column panel of `B` is ~`4k·NR`
/// bytes (16 KiB at `k = 256`), so panels stay L1-resident across row groups.
/// `NR = 16` is also exactly two 256-bit AVX2 vectors per row.
pub(crate) const NR: usize = 16;

/// Lanes in the NT kernel's blocked dot product: four AVX2 vectors, i.e.
/// four independent FMA accumulator chains. Two chains (the old 16-lane
/// shape) left the fused accumulation latency-bound; four roughly doubles
/// large-`k` dot throughput while keeping the scalar tail under 32 elements.
const DOT_LANES: usize = 32;

/// Below this many fused multiply-adds (~50 µs of work) the pool fan-out
/// costs more than the arithmetic; kernels stay on the calling thread.
/// Fan-out is also suppressed automatically inside `fleet_parallel` workers,
/// so the simulation's per-task gradients never nest fan-outs. The im2col
/// convolution layer reuses the same budget to gate its batch fan-out.
pub(crate) const PAR_FLOP_THRESHOLD: usize = 1 << 19;

/// Minimum number of full `MR`-row groups in a chunk before the NN kernel
/// packs `B` panels: one group reads the panel exactly once, so packing only
/// amortises from the second sweep on. Gating on chunk size is safe because
/// packing never changes the arithmetic (see the module docs).
const PACK_MIN_GROUPS: usize = 2;

/// Minimum total rows `m` before the NT kernels use the packed-tile
/// formulation instead of the blocked dot product. Packing transposes a
/// `k × NR` panel with strided writes, so it needs at least two full MR-row
/// sweeps to beat the dot kernel's contiguous reads (the im2col conv weight
/// gradient with few output channels and a long position axis is the
/// motivating small-`m`, large-`k` case). Unlike [`PACK_MIN_GROUPS`] this
/// gate *changes the numeric structure* (fused chain vs. reduction tree), so
/// it must key on the full `m` — never the per-chunk partition.
pub(crate) const NT_PACK_MIN_ROWS: usize = 2 * MR;

/// Column block for the NT kernels' blocked-dot path: this many `B` rows
/// (`DOT_COL_BLOCK · k` floats) are swept by every `A` row before moving on,
/// keeping them L1-resident instead of re-streaming all of `B` per output
/// row — the small-`m`, large-`k` products this path serves (e.g. the im2col
/// conv weight gradient at few output channels) are memory-bound without it.
/// Iteration order over *independent* output elements only; never affects
/// numerics.
const DOT_COL_BLOCK: usize = 8;

thread_local! {
    /// Per-thread B-panel scratch, reused across kernel calls. The pool
    /// workers are persistent, so after warm-up no kernel call allocates;
    /// the buffer grows to the largest `k × NR` panel the thread has packed.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` on this thread's packing buffer, grown to at least `len`.
fn with_pack_buf<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Packs the `NR`-wide column panel `b[:, j0..j0+NR]` of a row-major `[k, n]`
/// matrix into `panel[p*NR + j] = b[p][j0 + j]`.
fn pack_b_panel(b: &[f32], panel: &mut [f32], k: usize, n: usize, j0: usize) {
    for p in 0..k {
        panel[p * NR..p * NR + NR].copy_from_slice(&b[p * n + j0..p * n + j0 + NR]);
    }
}

/// Packs `NR` rows `b[j0..j0+NR, :]` of a row-major `[n, k]` matrix
/// *transposed* into the same panel shape: `panel[p*NR + j] = b[j0 + j][p]`.
/// After this, the NN micro-kernel computes `A·Bᵀ` columns without ever
/// touching the strided original again.
fn pack_bt_panel(b: &[f32], panel: &mut [f32], k: usize, j0: usize) {
    for (j, row) in b[j0 * k..(j0 + NR) * k].chunks_exact(k).enumerate() {
        for (p, &v) in row.iter().enumerate() {
            panel[p * NR + j] = v;
        }
    }
}

/// Instruction-set variant a kernel dispatches to.
///
/// Both variants compute bit-for-bit identical results (see the module docs);
/// the choice is purely a throughput decision, made once per process by
/// [`Isa::active`]. The `*_with` kernel entry points take an explicit `Isa`
/// so property tests and benches can pin either path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable `f32::mul_add` lane loops. With hardware FMA compiled in
    /// this autovectorises to fused instructions; without it, it lowers to
    /// the correctly-rounded software `fma` — slower, never different.
    Scalar,
    /// Explicit AVX2 + FMA intrinsics (x86-64 only, runtime-detected).
    Avx2Fma,
}

impl Isa {
    /// Best ISA the host supports, ignoring the env override.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Isa::Avx2Fma;
            }
        }
        Isa::Scalar
    }

    /// The ISA the public kernels dispatch to, cached after the first call:
    /// `FLEET_SIMD=off|0|scalar|false` forces [`Isa::Scalar`]; anything else
    /// (or unset) takes [`Isa::detect`].
    pub fn active() -> Self {
        static ACTIVE: OnceLock<Isa> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let forced_off = std::env::var("FLEET_SIMD").is_ok_and(|v| {
                matches!(
                    v.to_ascii_lowercase().as_str(),
                    "off" | "0" | "scalar" | "false"
                )
            });
            if forced_off {
                Isa::Scalar
            } else {
                Isa::detect()
            }
        })
    }

    /// Stable lowercase name, as recorded in bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2Fma => "avx2+fma",
        }
    }

    /// The ISA actually safe to execute for a request of `self`: a
    /// [`Isa::Avx2Fma`] request on a host whose CPU lacks the features
    /// silently downgrades to [`Isa::Scalar`]. `Isa` is publicly
    /// constructible, so every kernel entry point routes through this —
    /// intrinsics must never run unguarded from a safe API. The downgrade
    /// costs nothing in correctness: both paths are bit-identical.
    /// (`is_x86_feature_detected!` caches, so this is an atomic load.)
    fn effective(self) -> Self {
        match self {
            Isa::Avx2Fma if Isa::detect() == Isa::Avx2Fma => Isa::Avx2Fma,
            _ => Isa::Scalar,
        }
    }
}

/// `y[i] = a.mul_add(x[i], y[i])` — the shared remainder primitive. Fused per
/// element, so it is exact-identical no matter which ISA the main tiles used.
#[inline]
fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    for (y, &x) in y.iter_mut().zip(x) {
        *y = a.mul_add(x, *y);
    }
}

/// Dot product with [`DOT_LANES`] independent accumulator lanes combined in
/// a fixed pairwise tree (`32 -> 16 -> 8 -> 4 -> 2 -> 1`), plus a fused
/// scalar tail. Both ISA variants accumulate the same lane structure *and*
/// reduce with the same pairings — the AVX2 tree is vector adds over exactly
/// the `acc[l] += acc[l + width]` pairs of the scalar loop — so results are
/// bit-identical.
#[inline]
fn dot(isa: Isa, x: &[f32], y: &[f32]) -> f32 {
    const L: usize = DOT_LANES;
    debug_assert_eq!(x.len(), y.len());
    let chunks = x.len() / L;
    let main = match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every kernel entry point downgrades the requested ISA via
        // `Isa::effective`, so `Avx2Fma` here implies the CPU has avx2+fma.
        Isa::Avx2Fma => unsafe { dot_main_avx2(x, y, chunks) },
        _ => dot_main_scalar(x, y, chunks),
    };
    let mut tail = 0.0f32;
    for i in chunks * L..x.len() {
        tail = x[i].mul_add(y[i], tail);
    }
    main + tail
}

/// Scalar lane accumulation + reduction tree for [`dot`]:
/// `lanes[l] += x[c*L+l] * y[c*L+l]`, fused per element, then the fixed
/// pairwise tree.
#[inline]
fn dot_main_scalar(x: &[f32], y: &[f32], chunks: usize) -> f32 {
    const L: usize = DOT_LANES;
    let mut lanes = [0.0f32; L];
    for c in 0..chunks {
        let xs: &[f32; L] = x[c * L..c * L + L].try_into().unwrap();
        let ys: &[f32; L] = y[c * L..c * L + L].try_into().unwrap();
        for l in 0..L {
            lanes[l] = xs[l].mul_add(ys[l], lanes[l]);
        }
    }
    let mut width = L / 2;
    while width > 0 {
        for l in 0..width {
            lanes[l] += lanes[l + width];
        }
        width /= 2;
    }
    lanes[0]
}

/// AVX2+FMA lane accumulation + reduction for [`dot`]: the identical lane
/// structure as [`dot_main_scalar`] (four `vfmadd` accumulator vectors per
/// 32-element chunk) and the identical tree pairings, executed as vector
/// adds: `acc0 += acc2` is lanes `0..8 += 16..24`, etc., down to the final
/// scalar add — no horizontal-sum shortcut that would reassociate.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_main_avx2(x: &[f32], y: &[f32], chunks: usize) -> f32 {
    use std::arch::x86_64::*;
    // SAFETY: the `#[target_feature]` gate is discharged by the caller (this
    // fn's own contract), and every `loadu` reads 8 floats at `off + v*8 + 7
    // < chunks * DOT_LANES <= x.len(), y.len()` — in-bounds for both slices
    // since the dispatcher only passes `chunks = len / DOT_LANES`.
    unsafe {
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let mut acc = [_mm256_setzero_ps(); DOT_LANES / 8];
        for c in 0..chunks {
            let off = c * DOT_LANES;
            for (v, lane) in acc.iter_mut().enumerate() {
                *lane = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(off + v * 8)),
                    _mm256_loadu_ps(yp.add(off + v * 8)),
                    *lane,
                );
            }
        }
        // width 16: lanes l += l+16  (0..8)+(16..24), (8..16)+(24..32)
        let a01 = _mm256_add_ps(acc[0], acc[2]);
        let a23 = _mm256_add_ps(acc[1], acc[3]);
        // width 8: lanes l += l+8
        let a = _mm256_add_ps(a01, a23);
        // width 4: lanes l += l+4
        let q = _mm_add_ps(_mm256_castps256_ps128(a), _mm256_extractf128_ps(a, 1));
        // width 2: lanes l += l+2
        let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
        // width 1: lane 0 += lane 1
        let r = _mm_add_ss(h, _mm_shuffle_ps(h, h, 0b01));
        _mm_cvtss_f32(r)
    }
}

#[inline]
fn check(name: &str, a: usize, b: usize, out: usize, m: usize, k: usize, n: usize) {
    assert_eq!(a, m * k, "{name}: lhs has {a} elements, expected {m}x{k}");
    assert_eq!(b, k * n, "{name}: rhs has {b} elements, expected {k}x{n}");
    assert_eq!(
        out,
        m * n,
        "{name}: out has {out} elements, expected {m}x{n}"
    );
}

/// `out = a · b` with `a: [m,k]`, `b: [k,n]`, `out: [m,n]`, all row-major.
///
/// Cache-blocked and parallel over output rows; `out` is fully overwritten.
/// Dispatches to [`Isa::active`].
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_with(Isa::active(), a, b, out, m, k, n);
}

/// [`matmul`] pinned to an explicit [`Isa`]. Bit-identical across ISAs.
#[allow(clippy::too_many_arguments)]
pub fn matmul_with(isa: Isa, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check("matmul", a.len(), b.len(), out.len(), m, k, n);
    let isa = isa.effective();
    if m * k * n < PAR_FLOP_THRESHOLD {
        matmul_rows(isa, a, b, out, 0, k, n);
        return;
    }
    fleet_parallel::parallel_chunks_mut(out, n, |first_row, chunk| {
        matmul_rows(isa, a, b, chunk, first_row, k, n);
    });
}

/// Computes `chunk = a[first_row.., :] · b` for `chunk.len() / n` rows.
///
/// Full `MR`-row groups run the register-tiled micro-kernel over `NR`-column
/// panels — packed into a contiguous thread-local buffer first when the chunk
/// sweeps each panel at least [`PACK_MIN_GROUPS`] times; row/column remainders
/// fall back to the (ISA-shared) axpy loop. Either way each output element
/// accumulates over `p` in ascending order, so neither the partition into
/// tiles (and threads) nor the packing gate ever changes the numerics.
fn matmul_rows(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    first_row: usize,
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let rows = chunk.len() / n;
    let n_main = n - n % NR;
    let full_groups = rows / MR;
    if full_groups >= PACK_MIN_GROUPS && n_main > 0 && n > NR {
        // Panel-outer sweep: pack b[:, j0..j0+NR] once, reuse it for every
        // MR-row group of the chunk. (With n == NR, `b` already *is* one
        // contiguous panel — the n > NR gate above skips the no-op copy and
        // the in-place branch below reads it directly.)
        with_pack_buf(k * NR, |panel| {
            for j0 in (0..n_main).step_by(NR) {
                pack_b_panel(b, panel, k, n, j0);
                for g in 0..full_groups {
                    let group = &mut chunk[g * MR * n..(g + 1) * MR * n];
                    tile_nn(
                        isa,
                        a,
                        panel,
                        NR,
                        0,
                        group,
                        first_row + g * MR,
                        k,
                        n,
                        j0,
                        false,
                    );
                }
            }
        });
        // Row tail (rows % MR) over the full width, and column tail
        // (n % NR) of the tiled rows: fused axpy, same per-element chains.
        for r in full_groups * MR..rows {
            let a_row = &a[(first_row + r) * k..(first_row + r) * k + k];
            let out_row = &mut chunk[r * n..(r + 1) * n];
            out_row.fill(0.0);
            for (p, &av) in a_row.iter().enumerate() {
                axpy(out_row, &b[p * n..p * n + n], av);
            }
        }
        if n_main < n {
            for r in 0..full_groups * MR {
                let a_row = &a[(first_row + r) * k..(first_row + r) * k + k];
                let tail = &mut chunk[r * n + n_main..(r + 1) * n];
                tail.fill(0.0);
                for (p, &av) in a_row.iter().enumerate() {
                    axpy(tail, &b[p * n + n_main..(p + 1) * n], av);
                }
            }
        }
        return;
    }
    for (group_idx, group) in chunk.chunks_mut(MR * n).enumerate() {
        let row0 = first_row + group_idx * MR;
        if group.len() == MR * n {
            for j0 in (0..n_main).step_by(NR) {
                tile_nn(isa, a, b, n, j0, group, row0, k, n, j0, false);
            }
            if n_main < n {
                for (i, out_row) in group.chunks_mut(n).enumerate() {
                    let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
                    let tail = &mut out_row[n_main..];
                    tail.fill(0.0);
                    for (p, &av) in a_row.iter().enumerate() {
                        axpy(tail, &b[p * n + n_main..(p + 1) * n], av);
                    }
                }
            }
        } else {
            // Fewer than MR rows remain: plain axpy rows.
            for (i, out_row) in group.chunks_mut(n).enumerate() {
                let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
                out_row.fill(0.0);
                for (p, &av) in a_row.iter().enumerate() {
                    axpy(out_row, &b[p * n..p * n + n], av);
                }
            }
        }
    }
}

/// Register-tiled `MR × NR` micro-kernel, dispatched on `isa`:
/// `group[.., j0..j0+NR] {=, +=} Σ_p a[row][p] · b[p*b_stride + bj + j]`.
///
/// `b` may be the full `[k, n]` operand (`b_stride = n`, `bj = j0`) or a
/// packed `[k × NR]` panel (`b_stride = NR`, `bj = 0`) — the arithmetic is
/// identical either way. With `acc` set, the accumulators are *seeded from
/// the existing output* (one fused chain per element, exactly like the
/// remainder axpy path), which is what the accumulating NT entry point needs.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_nn(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    b_stride: usize,
    bj: usize,
    group: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    j0: usize,
    acc: bool,
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every kernel entry point downgrades the requested ISA via
        // `Isa::effective`, so `Avx2Fma` here implies the CPU has avx2+fma.
        Isa::Avx2Fma => unsafe { tile_nn_avx2(a, b, b_stride, bj, group, row0, k, n, j0, acc) },
        _ => tile_nn_scalar(a, b, b_stride, bj, group, row0, k, n, j0, acc),
    }
}

/// Portable NN tile: `acc[i][j] = fma(a[i][p], b[p][bj+j], acc[i][j])`.
#[allow(clippy::too_many_arguments)]
fn tile_nn_scalar(
    a: &[f32],
    b: &[f32],
    b_stride: usize,
    bj: usize,
    group: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    j0: usize,
    acc: bool,
) {
    let mut sums = [[0.0f32; NR]; MR];
    if acc {
        for (i, lane) in sums.iter_mut().enumerate() {
            lane.copy_from_slice(&group[i * n + j0..i * n + j0 + NR]);
        }
    }
    let a_rows: [&[f32]; MR] = std::array::from_fn(|i| &a[(row0 + i) * k..(row0 + i) * k + k]);
    for p in 0..k {
        let b_lane: &[f32; NR] = b[p * b_stride + bj..p * b_stride + bj + NR]
            .try_into()
            .unwrap();
        for i in 0..MR {
            let av = a_rows[i][p];
            for j in 0..NR {
                sums[i][j] = av.mul_add(b_lane[j], sums[i][j]);
            }
        }
    }
    for (i, lane) in sums.iter().enumerate() {
        group[i * n + j0..i * n + j0 + NR].copy_from_slice(lane);
    }
}

/// AVX2+FMA NN tile: two `vfmadd` vectors per row, identical lane structure
/// to [`tile_nn_scalar`], broadcast `a` scalars against L1-resident `B`
/// panels.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA. Slice bounds are the caller's (already
/// asserted) kernel dimensions, exactly as in the scalar tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_nn_avx2(
    a: &[f32],
    b: &[f32],
    b_stride: usize,
    bj: usize,
    group: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    j0: usize,
    acc: bool,
) {
    use std::arch::x86_64::*;
    // SAFETY: the feature gate is this fn's own `# Safety` contract. All
    // raw reads/writes stay inside the caller-asserted tile: B is read at
    // `p * b_stride + bj + 0..16` (in-bounds both for a packed `k × NR`
    // panel, `bj = 0`, and for the full operand, `bj = j0 ≤ n - NR`); A at
    // `(row0 + i) * k + p`; `group` is written only at `i * n + j0 .. +16`
    // for `i < MR`, inside the caller-verified `MR × n` chunk.
    unsafe {
        let mut sums = [[_mm256_setzero_ps(); 2]; MR];
        if acc {
            for (i, lanes) in sums.iter_mut().enumerate() {
                let out = group.as_ptr().add(i * n + j0);
                lanes[0] = _mm256_loadu_ps(out);
                lanes[1] = _mm256_loadu_ps(out.add(8));
            }
        }
        let a_base = a.as_ptr();
        let b_base = b.as_ptr();
        // k unrolled by two. Both steps feed the *same* accumulator in
        // ascending-p order, so the unroll never reassociates — it only
        // hides the FMA latency behind the next pair of B loads.
        let mut p = 0;
        while p + 1 < k {
            let bp0 = b_base.add(p * b_stride + bj);
            let bp1 = b_base.add((p + 1) * b_stride + bj);
            let b0_lo = _mm256_loadu_ps(bp0);
            let b0_hi = _mm256_loadu_ps(bp0.add(8));
            let b1_lo = _mm256_loadu_ps(bp1);
            let b1_hi = _mm256_loadu_ps(bp1.add(8));
            for (i, lanes) in sums.iter_mut().enumerate() {
                let row = a_base.add((row0 + i) * k);
                let av0 = _mm256_set1_ps(*row.add(p));
                lanes[0] = _mm256_fmadd_ps(av0, b0_lo, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av0, b0_hi, lanes[1]);
                let av1 = _mm256_set1_ps(*row.add(p + 1));
                lanes[0] = _mm256_fmadd_ps(av1, b1_lo, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av1, b1_hi, lanes[1]);
            }
            p += 2;
        }
        if p < k {
            let bp = b_base.add(p * b_stride + bj);
            let b_lo = _mm256_loadu_ps(bp);
            let b_hi = _mm256_loadu_ps(bp.add(8));
            for (i, lanes) in sums.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a_base.add((row0 + i) * k + p));
                lanes[0] = _mm256_fmadd_ps(av, b_lo, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av, b_hi, lanes[1]);
            }
        }
        for (i, lanes) in sums.iter().enumerate() {
            let out = group.as_mut_ptr().add(i * n + j0);
            _mm256_storeu_ps(out, lanes[0]);
            _mm256_storeu_ps(out.add(8), lanes[1]);
        }
    }
}

/// `out += aᵀ · b` with `a: [k,m]`, `b: [k,n]`, `out: [m,n]`, row-major —
/// the fused weight-gradient kernel (`dW += xᵀ·dy`). Accumulates, matching
/// how layer gradients build up across backward calls. Dispatches to
/// [`Isa::active`].
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_tn_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_tn_acc_with(Isa::active(), a, b, out, m, k, n);
}

/// [`matmul_tn_acc`] pinned to an explicit [`Isa`]. Bit-identical across
/// ISAs.
#[allow(clippy::too_many_arguments)]
pub fn matmul_tn_acc_with(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check("matmul_tn_acc", a.len(), b.len(), out.len(), m, k, n);
    let isa = isa.effective();
    if m * k * n < PAR_FLOP_THRESHOLD {
        matmul_tn_rows(isa, a, b, out, 0, m, k, n);
        return;
    }
    fleet_parallel::parallel_chunks_mut(out, n, |first_row, chunk| {
        matmul_tn_rows(isa, a, b, chunk, first_row, m, k, n);
    });
}

/// Accumulates `chunk += aᵀ[first_row.., :] · b` for `chunk.len() / n` rows.
///
/// Same tiling as [`matmul_rows`], except the `MR` input scalars per `p` come
/// from a row of `a` (adjacent columns) and the tile accumulates *onto* the
/// output, seeding its registers from the existing values so the fused chain
/// is identical to the remainder path's (see [`tile_tn_scalar`]).
#[allow(clippy::too_many_arguments)]
fn matmul_tn_rows(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    first_row: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let n_main = n - n % NR;
    for (group_idx, group) in chunk.chunks_mut(MR * n).enumerate() {
        let row0 = first_row + group_idx * MR;
        if group.len() == MR * n {
            for j0 in (0..n_main).step_by(NR) {
                tile_tn(isa, a, b, group, row0, m, k, n, j0);
            }
            if n_main < n {
                for (i, out_row) in group.chunks_mut(n).enumerate() {
                    let col = row0 + i;
                    let tail = &mut out_row[n_main..];
                    for p in 0..k {
                        axpy(tail, &b[p * n + n_main..(p + 1) * n], a[p * m + col]);
                    }
                }
            }
        } else {
            for (i, out_row) in group.chunks_mut(n).enumerate() {
                let col = row0 + i;
                for p in 0..k {
                    axpy(out_row, &b[p * n..p * n + n], a[p * m + col]);
                }
            }
        }
    }
}

/// Register-tiled accumulating micro-kernel for the TN layout, dispatched on
/// `isa`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_tn(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    group: &mut [f32],
    row0: usize,
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: every kernel entry point downgrades the requested ISA via
        // `Isa::effective`, so `Avx2Fma` here implies the CPU has avx2+fma.
        Isa::Avx2Fma => unsafe { tile_tn_avx2(a, b, group, row0, m, k, n, j0) },
        _ => tile_tn_scalar(a, b, group, row0, m, k, n, j0),
    }
}

/// Portable TN tile. The accumulators are *seeded from the existing output*
/// and every multiply-add is fused, so an output element's value is one
/// fused chain `out = fma(a_p, b_p, out)` over ascending `p` — exactly the
/// chain the remainder axpy path produces. Seeding (rather than adding a
/// zero-based accumulator at the end) is what keeps rows bit-identical no
/// matter whether the thread partition routes them through the tile or the
/// remainder path.
#[allow(clippy::too_many_arguments)]
fn tile_tn_scalar(
    a: &[f32],
    b: &[f32],
    group: &mut [f32],
    row0: usize,
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, lane) in acc.iter_mut().enumerate() {
        lane.copy_from_slice(&group[i * n + j0..i * n + j0 + NR]);
    }
    for p in 0..k {
        let b_lane: &[f32; NR] = b[p * n + j0..p * n + j0 + NR].try_into().unwrap();
        let a_lane: &[f32; MR] = a[p * m + row0..p * m + row0 + MR].try_into().unwrap();
        for i in 0..MR {
            let av = a_lane[i];
            for j in 0..NR {
                acc[i][j] = av.mul_add(b_lane[j], acc[i][j]);
            }
        }
    }
    for (i, lane) in acc.iter().enumerate() {
        group[i * n + j0..i * n + j0 + NR].copy_from_slice(lane);
    }
}

/// AVX2+FMA TN tile: identical lane structure to [`tile_tn_scalar`],
/// including seeding the accumulators from the existing output.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA. Slice bounds are the caller's (already
/// asserted) kernel dimensions, exactly as in the scalar tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_tn_avx2(
    a: &[f32],
    b: &[f32],
    group: &mut [f32],
    row0: usize,
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
) {
    use std::arch::x86_64::*;
    // SAFETY: feature gate discharged by this fn's `# Safety` contract. B is
    // row-major `k × n` read at `p * n + j0 .. +16` with `j0 + 15 < n`
    // guaranteed by the 16-wide dispatch; A reads are `p * m + row0 + i`
    // with `row0 + MR <= m`; `group` writes mirror the scalar tile exactly.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for (i, lanes) in acc.iter_mut().enumerate() {
            let out = group.as_ptr().add(i * n + j0);
            lanes[0] = _mm256_loadu_ps(out);
            lanes[1] = _mm256_loadu_ps(out.add(8));
        }
        let a_base = a.as_ptr();
        let b_base = b.as_ptr();
        // Same ascending-p unroll as the NN tile; the `a` scalars sit
        // contiguously per p (adjacent columns of the transposed operand).
        let mut p = 0;
        while p + 1 < k {
            let bp0 = b_base.add(p * n + j0);
            let bp1 = b_base.add((p + 1) * n + j0);
            let b0_lo = _mm256_loadu_ps(bp0);
            let b0_hi = _mm256_loadu_ps(bp0.add(8));
            let b1_lo = _mm256_loadu_ps(bp1);
            let b1_hi = _mm256_loadu_ps(bp1.add(8));
            let ap0 = a_base.add(p * m + row0);
            let ap1 = a_base.add((p + 1) * m + row0);
            for (i, lanes) in acc.iter_mut().enumerate() {
                let av0 = _mm256_set1_ps(*ap0.add(i));
                lanes[0] = _mm256_fmadd_ps(av0, b0_lo, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av0, b0_hi, lanes[1]);
                let av1 = _mm256_set1_ps(*ap1.add(i));
                lanes[0] = _mm256_fmadd_ps(av1, b1_lo, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av1, b1_hi, lanes[1]);
            }
            p += 2;
        }
        if p < k {
            let bp = b_base.add(p * n + j0);
            let b_lo = _mm256_loadu_ps(bp);
            let b_hi = _mm256_loadu_ps(bp.add(8));
            let ap = a_base.add(p * m + row0);
            for (i, lanes) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add(i));
                lanes[0] = _mm256_fmadd_ps(av, b_lo, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av, b_hi, lanes[1]);
            }
        }
        for (i, lanes) in acc.iter().enumerate() {
            let out = group.as_mut_ptr().add(i * n + j0);
            _mm256_storeu_ps(out, lanes[0]);
            _mm256_storeu_ps(out.add(8), lanes[1]);
        }
    }
}

/// `out = a · bᵀ` with `a: [m,k]`, `b: [n,k]`, `out: [m,n]`, row-major — the
/// fused input-gradient kernel (`dx = dy·Wᵀ`). `B` rows are packed transposed
/// into `NR`-wide panels and swept by the register-tiled micro-kernel; see
/// the module docs for the small-`m` blocked-dot path. Dispatches to
/// [`Isa::active`].
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_nt_with(Isa::active(), a, b, out, m, k, n);
}

/// [`matmul_nt`] pinned to an explicit [`Isa`]. Bit-identical across ISAs.
#[allow(clippy::too_many_arguments)]
pub fn matmul_nt_with(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check("matmul_nt", a.len(), b.len(), out.len(), m, k, n);
    matmul_nt_dispatch(isa.effective(), a, b, out, m, k, n, false);
}

/// `out += a · bᵀ` — the accumulating variant of [`matmul_nt`], used by the
/// im2col convolution's weight gradient (`dW += dY · colsᵀ`), which builds up
/// across backward calls exactly like [`matmul_tn_acc`] does for dense
/// layers. Each output element extends its existing value by one fused chain
/// over ascending `p`. Dispatches to [`Isa::active`].
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_nt_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_nt_acc_with(Isa::active(), a, b, out, m, k, n);
}

/// [`matmul_nt_acc`] pinned to an explicit [`Isa`]. Bit-identical across
/// ISAs.
#[allow(clippy::too_many_arguments)]
pub fn matmul_nt_acc_with(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check("matmul_nt_acc", a.len(), b.len(), out.len(), m, k, n);
    matmul_nt_dispatch(isa.effective(), a, b, out, m, k, n, true);
}

#[allow(clippy::too_many_arguments)]
fn matmul_nt_dispatch(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    if m * k * n < PAR_FLOP_THRESHOLD {
        matmul_nt_rows(isa, a, b, out, 0, m, k, n, acc);
        return;
    }
    fleet_parallel::parallel_chunks_mut(out, n, |first_row, chunk| {
        matmul_nt_rows(isa, a, b, chunk, first_row, m, k, n, acc);
    });
}

/// Computes `chunk {=, +=} a[first_row.., :] · bᵀ` for `chunk.len() / n`
/// rows.
///
/// Main path: each `NR`-wide group of output columns packs the matching `B`
/// rows transposed ([`pack_bt_panel`]) and runs the NN micro-kernel over
/// every `MR`-row group, with row remainders taking the axpy loop over the
/// same panel (identical fused chains). The column tail (`n % NR`) and the
/// `m < NT_PACK_MIN_ROWS` case keep the blocked-dot formulation — both
/// branches key only on the full shape, never the chunk partition, so
/// results are bit-identical across thread counts.
#[allow(clippy::too_many_arguments)]
fn matmul_nt_rows(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    first_row: usize,
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    if n == 0 {
        return;
    }
    let rows = chunk.len() / n;
    let n_main = if m < NT_PACK_MIN_ROWS { 0 } else { n - n % NR };
    if n_main > 0 {
        let full_groups = rows / MR;
        with_pack_buf(k * NR, |panel| {
            for j0 in (0..n_main).step_by(NR) {
                pack_bt_panel(b, panel, k, j0);
                for g in 0..full_groups {
                    let group = &mut chunk[g * MR * n..(g + 1) * MR * n];
                    tile_nn(
                        isa,
                        a,
                        panel,
                        NR,
                        0,
                        group,
                        first_row + g * MR,
                        k,
                        n,
                        j0,
                        acc,
                    );
                }
                for r in full_groups * MR..rows {
                    let a_row = &a[(first_row + r) * k..(first_row + r) * k + k];
                    let seg = &mut chunk[r * n + j0..r * n + j0 + NR];
                    if !acc {
                        seg.fill(0.0);
                    }
                    for (p, &av) in a_row.iter().enumerate() {
                        axpy(seg, &panel[p * NR..p * NR + NR], av);
                    }
                }
            }
        });
    }
    // Blocked-dot columns, in groups of DOT_COL_BLOCK: the block of `b` rows
    // stays L1-resident while every `a` row sweeps it, instead of re-
    // streaming all of `b` per output row. Pure iteration-order change over
    // independent output elements — bit-identical to the unblocked loop and
    // independent of the row partition.
    for jb in (n_main..n).step_by(DOT_COL_BLOCK) {
        let jend = (jb + DOT_COL_BLOCK).min(n);
        for i in 0..rows {
            let a_row = &a[(first_row + i) * k..(first_row + i) * k + k];
            for j in jb..jend {
                let d = dot(isa, a_row, &b[j * k..j * k + k]);
                let out = &mut chunk[i * n + j];
                *out = if acc { *out + d } else { d };
            }
        }
    }
}

/// The seed repository's single-threaded kernel, kept verbatim as the
/// benchmark baseline and the reference the property tests check the blocked
/// kernels against. Note the `a == 0.0` sparsity branch — see the module docs
/// for why the dense path dropped it.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check("matmul_naive", a.len(), b.len(), out.len(), m, k, n);
    out.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let row = &b[p * n..(p + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `out = a + factor · b`, element-wise, into a caller-owned buffer.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_scaled(a: &[f32], b: &[f32], factor: f32, out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "add_scaled operand length mismatch");
    assert_eq!(a.len(), out.len(), "add_scaled output length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + factor * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_pattern(len: usize, scale: f32) -> Vec<f32> {
        // Xorshift fill — the old truncating-hash form produced near-constant
        // data, which a reference test cannot distinguish from its
        // index-permuted variants.
        let mut state = 0x9E37_79B9_7F4A_7C15u64 | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * scale
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (17, 33, 9),
            (64, 64, 64),
            (70, 129, 31),
        ] {
            let a = fill_pattern(m * k, 2.0);
            let b = fill_pattern(k * n, 2.0);
            let mut fast = vec![0.0; m * n];
            let mut naive = vec![0.0; m * n];
            matmul(&a, &b, &mut fast, m, k, n);
            matmul_naive(&a, &b, &mut naive, m, k, n);
            assert_close(&fast, &naive, 1e-4);
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (m, k, n) = (13, 21, 8);
        let a = fill_pattern(k * m, 1.0); // stored [k, m]
        let b = fill_pattern(k * n, 1.0);
        // Reference: transpose a, then naive matmul.
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let mut expected = vec![0.0; m * n];
        matmul_naive(&at, &b, &mut expected, m, k, n);
        let mut out = vec![1.0; m * n]; // non-zero: tn accumulates
        matmul_tn_acc(&a, &b, &mut out, m, k, n);
        let shifted: Vec<f32> = expected.iter().map(|v| v + 1.0).collect();
        assert_close(&out, &shifted, 1e-4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let (m, k, n) = (9, 30, 14);
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(n * k, 1.0); // stored [n, k]
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let mut expected = vec![0.0; m * n];
        matmul_naive(&a, &bt, &mut expected, m, k, n);
        let mut out = vec![0.0; m * n];
        matmul_nt(&a, &b, &mut out, m, k, n);
        assert_close(&out, &expected, 1e-4);
    }

    #[test]
    fn large_shapes_cross_parallel_threshold_and_agree() {
        let (m, k, n) = (128, 64, 128); // 128*64*128 > PAR_FLOP_THRESHOLD
        assert!(m * k * n >= PAR_FLOP_THRESHOLD);
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(k * n, 1.0);
        let mut fast = vec![0.0; m * n];
        let mut naive = vec![0.0; m * n];
        matmul(&a, &b, &mut fast, m, k, n);
        matmul_naive(&a, &b, &mut naive, m, k, n);
        assert_close(&fast, &naive, 1e-3);
    }

    #[test]
    fn nt_acc_matches_explicit_transpose() {
        // n > NR so both the packed-panel columns and the dot tail run.
        let (m, k, n) = (13, 21, 20);
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(n * k, 1.0); // stored [n, k]
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let mut expected = vec![0.0; m * n];
        matmul_naive(&a, &bt, &mut expected, m, k, n);
        let mut out = vec![1.0; m * n]; // non-zero: nt_acc accumulates
        matmul_nt_acc(&a, &b, &mut out, m, k, n);
        let shifted: Vec<f32> = expected.iter().map(|v| v + 1.0).collect();
        assert_close(&out, &shifted, 1e-4);
    }

    #[test]
    fn nt_small_m_matches_tiled_reference() {
        // m < NT_PACK_MIN_ROWS keeps the blocked-dot path; it must still
        // agree with the explicit-transpose reference to tolerance.
        let (m, k, n) = (3, 37, 29);
        assert!(m < NT_PACK_MIN_ROWS);
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(n * k, 1.0);
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let mut expected = vec![0.0; m * n];
        matmul_naive(&a, &bt, &mut expected, m, k, n);
        let mut out = vec![0.0; m * n];
        matmul_nt(&a, &b, &mut out, m, k, n);
        assert_close(&out, &expected, 1e-4);
    }

    #[test]
    fn nt_is_partition_invariant() {
        // A row must produce identical bits whether the thread partition
        // routes it through the MR tile or the remainder axpy path, for both
        // the overwriting and the accumulating variant.
        let (m, k, n) = (16, 40, 35); // n_main = 32, 3 dot-tail columns
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(n * k, 1.0);
        let init = fill_pattern(m * n, 0.5);
        for isa in [Isa::Scalar, Isa::detect()] {
            for acc in [false, true] {
                let mut whole = init.clone();
                matmul_nt_rows(isa, &a, &b, &mut whole, 0, m, k, n, acc);
                let mut split = init.clone();
                for c in 0..4 {
                    matmul_nt_rows(
                        isa,
                        &a,
                        &b,
                        &mut split[c * 4 * n..(c + 1) * 4 * n],
                        c * 4,
                        m,
                        k,
                        n,
                        acc,
                    );
                }
                let whole_bits: Vec<u32> = whole.iter().map(|v| v.to_bits()).collect();
                let split_bits: Vec<u32> = split.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    whole_bits, split_bits,
                    "partition changed NT bits ({isa:?}, acc={acc})"
                );
            }
        }
    }

    #[test]
    fn packed_and_unpacked_nn_are_bit_identical() {
        // The packing gate keys on chunk size, so the two layouts must agree
        // bitwise. Drive matmul_rows directly: >= PACK_MIN_GROUPS full MR
        // groups packs, a single group does not.
        let (m, k, n) = (2 * MR, 33, 37);
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(k * n, 1.0);
        for isa in [Isa::Scalar, Isa::detect()] {
            let mut packed = vec![0.0f32; m * n];
            matmul_rows(isa, &a, &b, &mut packed, 0, k, n);
            let mut unpacked = vec![0.0f32; m * n];
            for c in 0..2 {
                // One MR group per chunk: below the packing gate.
                matmul_rows(
                    isa,
                    &a,
                    &b,
                    &mut unpacked[c * MR * n..(c + 1) * MR * n],
                    c * MR,
                    k,
                    n,
                );
            }
            let packed_bits: Vec<u32> = packed.iter().map(|v| v.to_bits()).collect();
            let unpacked_bits: Vec<u32> = unpacked.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                packed_bits, unpacked_bits,
                "packing changed NN bits ({isa:?})"
            );
        }
    }

    #[test]
    fn dot_is_exact_on_structured_input() {
        let x: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let y = vec![2.0f32; 19];
        for isa in [Isa::Scalar, Isa::detect()] {
            assert_eq!(dot(isa, &x, &y), (0..19).sum::<i32>() as f32 * 2.0);
        }
    }

    #[test]
    fn add_scaled_into_buffer() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        let mut out = [0.0; 2];
        add_scaled(&a, &b, 0.5, &mut out);
        assert_eq!(out, [6.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "lhs has")]
    fn dimension_mismatch_panics() {
        let mut out = [0.0; 4];
        matmul(&[1.0; 3], &[1.0; 4], &mut out, 2, 2, 2);
    }

    #[test]
    fn tn_accumulate_is_partition_invariant() {
        // Regression: a row must produce identical bits whether the thread
        // partition routes it through the MR tile or the remainder path.
        // Before the accumulators were seeded from the existing output, the
        // tile added a zero-based sum in one extra rounding, so chunk
        // boundaries not aligned to MR changed the result with the thread
        // count.
        let (m, k, n) = (16, 64, 32);
        let a = fill_pattern(k * m, 1.0);
        let b = fill_pattern(k * n, 1.0);
        let init = fill_pattern(m * n, 0.5);
        for isa in [Isa::Scalar, Isa::detect()] {
            // One chunk of all 16 rows: two full MR=6 groups + 4 remainder
            // rows (the single-thread partition).
            let mut whole = init.clone();
            matmul_tn_rows(isa, &a, &b, &mut whole, 0, m, k, n);
            // Four 4-row chunks: every row takes the remainder path (the
            // four-thread partition).
            let mut split = init.clone();
            for c in 0..4 {
                matmul_tn_rows(
                    isa,
                    &a,
                    &b,
                    &mut split[c * 4 * n..(c + 1) * 4 * n],
                    c * 4,
                    m,
                    k,
                    n,
                );
            }
            let whole_bits: Vec<u32> = whole.iter().map(|v| v.to_bits()).collect();
            let split_bits: Vec<u32> = split.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                whole_bits, split_bits,
                "partition changed TN bits ({isa:?})"
            );
        }
    }

    #[test]
    fn isa_detect_and_active_are_consistent() {
        // `active` may only downgrade (env override), never invent an ISA
        // the hardware lacks.
        let detected = Isa::detect();
        let active = Isa::active();
        assert!(active == detected || active == Isa::Scalar);
        assert!(!Isa::Scalar.name().is_empty() && !Isa::Avx2Fma.name().is_empty());
    }
}

/// SIMD/scalar parity: the intrinsics path and the `mul_add` fallback must
/// produce *byte-identical* outputs on every shape class the kernels meet —
/// dense, one-hot, NaN/Inf-laced, and remainder-sized (dimensions that are
/// not multiples of `MR`/`NR`/the dot lane width). On hosts without AVX2+FMA
/// these properties degenerate to scalar-vs-scalar and still pass.
#[cfg(test)]
mod simd_parity {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random fill, decorrelated by `salt`.
    fn fill(len: usize, salt: u64) -> Vec<f32> {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
            })
            .collect()
    }

    fn one_hot(rows: usize, cols: usize, salt: usize) -> Vec<f32> {
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            data[r * cols + (r * 7 + salt) % cols] = 1.0;
        }
        data
    }

    /// Sprinkles NaN and infinities at deterministic positions.
    fn poison(data: &mut [f32]) {
        for (i, v) in data.iter_mut().enumerate() {
            match i % 97 {
                13 => *v = f32::NAN,
                41 => *v = f32::INFINITY,
                71 => *v = f32::NEG_INFINITY,
                _ => {}
            }
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Runs all three kernels under both ISAs and asserts byte-identity.
    fn assert_parity(a_nn: &[f32], b_nn: &[f32], m: usize, k: usize, n: usize) {
        let simd = Isa::detect();
        // NN: out = a·b.
        let mut scalar_out = vec![0.0f32; m * n];
        let mut simd_out = vec![1.0f32; m * n]; // different seed: must be overwritten
        matmul_with(Isa::Scalar, a_nn, b_nn, &mut scalar_out, m, k, n);
        matmul_with(simd, a_nn, b_nn, &mut simd_out, m, k, n);
        assert_eq!(bits(&scalar_out), bits(&simd_out), "NN parity {m}x{k}x{n}");

        // TN: out += aᵀ·b, with a: [k,m] — reuse a_nn as [k,m] storage when
        // shapes line up (they do: both are m*k elements with k rows of m).
        let a_tn = fill(k * m, 7);
        let init = fill(m * n, 11);
        let mut scalar_acc = init.clone();
        let mut simd_acc = init;
        matmul_tn_acc_with(Isa::Scalar, &a_tn, b_nn, &mut scalar_acc, m, k, n);
        matmul_tn_acc_with(simd, &a_tn, b_nn, &mut simd_acc, m, k, n);
        assert_eq!(bits(&scalar_acc), bits(&simd_acc), "TN parity {m}x{k}x{n}");

        // NT: out = a·bᵀ, with b: [n,k].
        let b_nt = fill(n * k, 13);
        let mut scalar_nt = vec![0.0f32; m * n];
        let mut simd_nt = vec![2.0f32; m * n];
        matmul_nt_with(Isa::Scalar, a_nn, &b_nt, &mut scalar_nt, m, k, n);
        matmul_nt_with(simd, a_nn, &b_nt, &mut simd_nt, m, k, n);
        assert_eq!(bits(&scalar_nt), bits(&simd_nt), "NT parity {m}x{k}x{n}");

        // NT-acc: out += a·bᵀ, seeding the packed tiles from the output.
        let init_nt = fill(m * n, 17);
        let mut scalar_nta = init_nt.clone();
        let mut simd_nta = init_nt;
        matmul_nt_acc_with(Isa::Scalar, a_nn, &b_nt, &mut scalar_nta, m, k, n);
        matmul_nt_acc_with(simd, a_nn, &b_nt, &mut simd_nta, m, k, n);
        assert_eq!(
            bits(&scalar_nta),
            bits(&simd_nta),
            "NT-acc parity {m}x{k}x{n}"
        );
    }

    proptest! {
        #[test]
        fn parity_on_dense_random_shapes(dims in (1usize..40, 1usize..70, 1usize..40), salt in 0u64..1000) {
            let (m, k, n) = dims;
            let a = fill(m * k, salt);
            let b = fill(k * n, salt ^ 0xABCD);
            assert_parity(&a, &b, m, k, n);
        }

        #[test]
        fn parity_on_remainder_hostile_shapes(mr_off in 1usize..4, nr_off in 1usize..16, k_off in 1usize..16) {
            // Deliberately straddle every remainder path: rows not a multiple
            // of MR, columns not a multiple of NR, depth not a multiple of
            // the dot lane width.
            let (m, k, n) = (8 + mr_off, 16 + k_off, 16 + nr_off);
            let a = fill(m * k, 3);
            let b = fill(k * n, 5);
            assert_parity(&a, &b, m, k, n);
        }

        #[test]
        fn parity_on_one_hot_inputs(m in 1usize..48, n in 1usize..48, salt in 0usize..64) {
            let k = 33; // not a lane multiple
            let a = one_hot(m, k, salt);
            let b = fill(k * n, salt as u64);
            assert_parity(&a, &b, m, k, n);
        }

        #[test]
        fn parity_with_nan_and_inf(dims in (1usize..24, 1usize..48, 1usize..24), salt in 0u64..100) {
            // NaN payloads and Inf·0 products must propagate identically:
            // fused ops are deterministic even for non-finite inputs.
            let (m, k, n) = dims;
            let mut a = fill(m * k, salt);
            let mut b = fill(k * n, salt ^ 0x5555);
            poison(&mut a);
            poison(&mut b);
            assert_parity(&a, &b, m, k, n);
        }

        #[test]
        fn parity_across_parallel_threshold(salt in 0u64..20) {
            // 128x64x128 crosses PAR_FLOP_THRESHOLD, so the pool fan-out and
            // the per-chunk tile partition are both in play.
            let (m, k, n) = (128, 64, 128);
            let a = fill(m * k, salt);
            let b = fill(k * n, salt ^ 0xF0F0);
            assert_parity(&a, &b, m, k, n);
        }
    }
}
