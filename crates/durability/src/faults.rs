//! Deterministic disk-fault injection, in the simulation harness's
//! `FaultPlan` style: a stateless splitmix64 hash of `(seed, case, salt)`,
//! so every corruption scenario is a pure function of its coordinates and
//! reproduces bit-for-bit across runs and machines.

use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

/// One way the disk can betray the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The active journal loses its tail mid-append (crash during a write).
    TornTail,
    /// A bit flips somewhere inside the newest checkpoint container
    /// (silent media corruption); its CRC must catch it.
    CorruptCrc,
    /// The newest checkpoint vanishes entirely (crash between the temp
    /// write and the rename); recovery must chain from the prior generation.
    MissingNewest,
}

/// Stateless deterministic plan of disk faults. Same shape as the in-memory
/// `FaultPlan`: no RNG object, no state — every draw is a pure hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// Scenario seed; distinct seeds give independent fault schedules.
    pub seed: u64,
}

impl DiskFaultPlan {
    /// A plan with the given seed.
    pub fn new(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan { seed }
    }

    /// A uniform draw in `[0, 1)` for fault case `case` and draw `salt`,
    /// via the same splitmix64 finalizer the simulation `FaultPlan` uses.
    pub fn uniform(&self, case: u64, salt: u64) -> f64 {
        let mut h = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(case.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Which fault `case` injects (uniform thirds).
    pub fn scenario(&self, case: u64) -> DiskFault {
        let draw = self.uniform(case, 0);
        if draw < 1.0 / 3.0 {
            DiskFault::TornTail
        } else if draw < 2.0 / 3.0 {
            DiskFault::CorruptCrc
        } else {
            DiskFault::MissingNewest
        }
    }

    /// Where to truncate a `len`-byte file for `case` (any offset in
    /// `[0, len]`, both torn-header and no-op tears included).
    pub fn truncation_point(&self, case: u64, len: usize) -> usize {
        (self.uniform(case, 1) * (len as f64 + 1.0)) as usize
    }

    /// Which byte of a `len`-byte file to corrupt for `case`.
    pub fn corruption_offset(&self, case: u64, len: usize) -> usize {
        ((self.uniform(case, 2) * len as f64) as usize).min(len.saturating_sub(1))
    }

    /// Which bit to flip inside the corrupted byte for `case`.
    pub fn corruption_mask(&self, case: u64) -> u8 {
        1 << ((self.uniform(case, 3) * 8.0) as u32).min(7)
    }

    /// Applies the planned fault for `case` to a store directory: tears the
    /// newest journal's tail, flips a bit in the newest checkpoint, or
    /// deletes the newest checkpoint. Returns what it did. A no-op (empty
    /// directory, zero-length target) still reports the planned fault.
    pub fn inject(&self, dir: &Path, case: u64) -> io::Result<DiskFault> {
        let fault = self.scenario(case);
        match fault {
            DiskFault::TornTail => {
                if let Some(path) = newest(dir, "wal-", ".log")? {
                    let len = fs::metadata(&path)?.len() as usize;
                    let keep = self.truncation_point(case, len).min(len);
                    OpenOptions::new()
                        .write(true)
                        .open(&path)?
                        .set_len(keep as u64)?;
                }
            }
            DiskFault::CorruptCrc => {
                if let Some(path) = newest(dir, "ckpt-", ".bin")? {
                    let mut raw = fs::read(&path)?;
                    if !raw.is_empty() {
                        let offset = self.corruption_offset(case, raw.len());
                        raw[offset] ^= self.corruption_mask(case);
                        fs::write(&path, &raw)?;
                    }
                }
            }
            DiskFault::MissingNewest => {
                if let Some(path) = newest(dir, "ckpt-", ".bin")? {
                    fs::remove_file(&path)?;
                }
            }
        }
        Ok(fault)
    }
}

/// The highest-generation file matching `prefix`/`suffix` in `dir`.
fn newest(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Option<PathBuf>> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let Some(generation) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(suffix))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().map(|(g, _)| generation > *g).unwrap_or(true) {
            best = Some((generation, entry.path()));
        }
    }
    Ok(best.map(|(_, path)| path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_uniform_ish() {
        let plan = DiskFaultPlan::new(7);
        assert_eq!(plan.uniform(3, 1), plan.uniform(3, 1));
        assert_ne!(plan.uniform(3, 1), plan.uniform(3, 2));
        assert_ne!(plan.uniform(3, 1), plan.uniform(4, 1));
        assert_ne!(
            DiskFaultPlan::new(7).uniform(3, 1),
            DiskFaultPlan::new(8).uniform(3, 1)
        );
        let mean: f64 = (0..4096).map(|case| plan.uniform(case, 0)).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
    }

    #[test]
    fn all_scenarios_reachable() {
        let plan = DiskFaultPlan::new(11);
        let mut seen = [false; 3];
        for case in 0..64 {
            match plan.scenario(case) {
                DiskFault::TornTail => seen[0] = true,
                DiskFault::CorruptCrc => seen[1] = true,
                DiskFault::MissingNewest => seen[2] = true,
            }
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn geometry_helpers_stay_in_bounds() {
        let plan = DiskFaultPlan::new(23);
        for case in 0..256 {
            assert!(plan.truncation_point(case, 100) <= 100);
            assert!(plan.corruption_offset(case, 100) < 100);
            assert_eq!(plan.corruption_mask(case).count_ones(), 1);
        }
        assert_eq!(plan.corruption_offset(0, 0), 0);
    }
}
