// Fixture (scanned outside crates/parallel): ad-hoc threading and a
// mutable global. Expect three thread-hygiene findings (spawn, Builder,
// static mut).

static mut COUNTER: u64 = 0;

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
    let _ = std::thread::Builder::new().name("rogue".into()).spawn(|| {});
}
