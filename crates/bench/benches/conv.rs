//! Benchmarks of the im2col convolution engine against the direct loop-nest
//! reference — the paper's Table 1 workloads are CNNs, so these pairs track
//! the dominant FLOPs of the benchmark models.
//!
//! Run via `scripts/ci.sh` (or set `FLEET_BENCH_JSON=BENCH_conv.json`) for a
//! machine-readable record. The key pairs:
//!
//! * `table1_mnist_step_im2col` vs `table1_mnist_step_direct` — one full
//!   forward+backward training step of the paper's MNIST CNN on both conv
//!   paths (the PR-4 acceptance pair: im2col must be ≥3x on one core).
//! * `conv2_mnist_{forward,backward}_*` — the second MNIST convolution in
//!   isolation (8→48 channels, 5x5 on 8x8), where the direct nest's short
//!   4-wide output rows vectorise worst and the GEMM lowering wins most.
//! * `table1_emnist_step_im2col` / `table1_cifar100_step_im2col` — the other
//!   two Table 1 topologies on the default path, for the perf trajectory.
//! * `maxpool2d_forward_24x24` — the row-vectorised pooling sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fleet_ml::init::Initializer;
use fleet_ml::layer::Layer;
use fleet_ml::layers::{Conv2d, ConvPath, Dense, Flatten, MaxPool2d, Relu};
use fleet_ml::model::Sequential;
use fleet_ml::models::{table1_cifar100_cnn, table1_emnist_cnn, table1_mnist_cnn};
use fleet_ml::tensor::Tensor;

fn pattern(len: usize, scale: f32) -> Vec<f32> {
    // Xorshift fill: the old `(i * 2654435761) as f32 / usize::MAX as f32`
    // form never wrapped the hash to 32 bits, so every value rounded to
    // -0.5·scale and the benches ran on constant data.
    let mut state = 0x9E37_79B9_7F4A_7C15u64 | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * scale
        })
        .collect()
}

/// The paper's Table 1 MNIST topology with both convolutions pinned to
/// `path` — the direct-path twin of `models::table1_mnist_cnn`.
fn mnist_cnn_with_path(path: ConvPath, seed: u64) -> Sequential {
    let mut conv1 = Conv2d::new(1, 8, 5, 1, Initializer::He, seed);
    conv1.set_path(path);
    let mut conv2 = Conv2d::new(8, 48, 5, 1, Initializer::He, seed + 1);
    conv2.set_path(path);
    Sequential::new()
        .with_layer(Box::new(conv1))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(3, 3)))
        .with_layer(Box::new(conv2))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(2, 2)))
        .with_layer(Box::new(Flatten::new()))
        .with_layer(Box::new(Dense::new(192, 10, Initializer::Xavier, seed + 2)))
}

fn conv_layer_benches(c: &mut Criterion) {
    // MNIST conv2 shapes: [16, 8, 8, 8] -> [16, 48, 4, 4].
    let input = Tensor::from_vec(pattern(16 * 8 * 8 * 8, 1.0), &[16, 8, 8, 8]);
    for (name, path) in [
        ("conv2_mnist_forward_im2col", ConvPath::Im2col),
        ("conv2_mnist_forward_direct", ConvPath::Direct),
    ] {
        c.bench_function(name, |b| {
            let mut conv = Conv2d::new(8, 48, 5, 1, Initializer::He, 0);
            conv.set_path(path);
            b.iter(|| black_box(conv.forward(&input).unwrap()));
        });
    }
    for (name, path) in [
        ("conv2_mnist_backward_im2col", ConvPath::Im2col),
        ("conv2_mnist_backward_direct", ConvPath::Direct),
    ] {
        c.bench_function(name, |b| {
            let mut conv = Conv2d::new(8, 48, 5, 1, Initializer::He, 0);
            conv.set_path(path);
            let out = conv.forward(&input).unwrap();
            let grad = Tensor::from_vec(pattern(out.len(), 1.0), out.shape());
            b.iter(|| {
                conv.zero_gradients();
                black_box(conv.backward(&grad).unwrap())
            });
        });
    }
}

fn table1_step_benches(c: &mut Criterion) {
    // The acceptance pair: one full training step (forward + backward +
    // gradient flattening) of the Table 1 MNIST CNN on both conv paths.
    let x_mnist = Tensor::from_vec(pattern(16 * 28 * 28, 1.0), &[16, 1, 28, 28]);
    let y16: Vec<usize> = (0..16).map(|i| i % 10).collect();
    c.bench_function("table1_mnist_step_im2col", |b| {
        let mut model = table1_mnist_cnn(0);
        b.iter(|| black_box(model.compute_gradient(&x_mnist, &y16).unwrap()));
    });
    c.bench_function("table1_mnist_step_direct", |b| {
        let mut model = mnist_cnn_with_path(ConvPath::Direct, 0);
        b.iter(|| black_box(model.compute_gradient(&x_mnist, &y16).unwrap()));
    });
    c.bench_function("table1_mnist_forward_im2col", |b| {
        let mut model = table1_mnist_cnn(0);
        b.iter(|| black_box(model.forward(&x_mnist).unwrap()));
    });
    c.bench_function("table1_mnist_forward_direct", |b| {
        let mut model = mnist_cnn_with_path(ConvPath::Direct, 0);
        b.iter(|| black_box(model.forward(&x_mnist).unwrap()));
    });

    let x_emnist = Tensor::from_vec(pattern(16 * 28 * 28, 1.0), &[16, 1, 28, 28]);
    let y62: Vec<usize> = (0..16).map(|i| i % 62).collect();
    c.bench_function("table1_emnist_step_im2col", |b| {
        let mut model = table1_emnist_cnn(0);
        b.iter(|| black_box(model.compute_gradient(&x_emnist, &y62).unwrap()));
    });

    let x_cifar = Tensor::from_vec(pattern(8 * 3 * 32 * 32, 1.0), &[8, 3, 32, 32]);
    let y100: Vec<usize> = (0..8).map(|i| i % 100).collect();
    c.bench_function("table1_cifar100_step_im2col", |b| {
        let mut model = table1_cifar100_cnn(0);
        b.iter(|| black_box(model.compute_gradient(&x_cifar, &y100).unwrap()));
    });
}

fn pool_benches(c: &mut Criterion) {
    // The MNIST model's first pool: 3x3/3 over the 24x24 conv1 output.
    let input = Tensor::from_vec(pattern(16 * 8 * 24 * 24, 1.0), &[16, 8, 24, 24]);
    c.bench_function("maxpool2d_forward_24x24", |b| {
        let mut pool = MaxPool2d::new(3, 3);
        b.iter(|| black_box(pool.forward(&input).unwrap()));
    });
}

criterion_group!(
    benches,
    conv_layer_benches,
    table1_step_benches,
    pool_benches
);
criterion_main!(benches);
