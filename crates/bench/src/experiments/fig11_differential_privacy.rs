//! Figure 11: staleness awareness under differential privacy — AdaSGD vs
//! DynSGD with Gaussian-mechanism gradient perturbation at ε = 1.75 and
//! ε = 13.66 (and without noise), on IID data with D2 staleness.

use crate::experiments::common;
use crate::{ExperimentWriter, Scale};
use fleet_core::{AdaSgd, Aggregator, DynSgd};
use fleet_dp::MomentsAccountant;
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution, TrainingHistory};

fn run_one<A: Aggregator>(
    world: &common::World,
    scale: Scale,
    dp: Option<(f32, f32)>,
    aggregator: A,
) -> TrainingHistory {
    let mut builder = SimulationConfig::builder()
        .steps(scale.pick(300, 2500))
        .learning_rate(0.05)
        .batch_size(scale.pick(32, 100))
        .staleness(StalenessDistribution::d2())
        .eval_every(scale.pick(60, 100))
        .eval_examples(800)
        .seed(8);
    if let Some((clip_norm, noise_multiplier)) = dp {
        builder = builder.dp(clip_norm, noise_multiplier);
    }
    let cfg = builder.build().expect("fig11 config is valid");
    let sim = AsyncSimulation::new(&world.train, &world.test, &world.users, cfg);
    let mut model = common::model(world.train.num_classes(), 6);
    sim.run(&mut model, aggregator)
}

/// Runs the differentially-private comparison.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig11_differential_privacy");
    out.comment("Figure 11: AdaSGD vs DynSGD with differentially-private gradients (IID, D2)");
    let world = common::world(10, scale.pick(2000, 6000), 100, false, 55);

    // Map the paper's epsilons to noise multipliers with the accountant.
    let steps = scale.pick(300u64, 2500);
    let accountant = MomentsAccountant::paper_mnist_defaults();
    let sigma_strong = accountant.noise_for_epsilon(1.75, steps) as f32;
    let sigma_weak = accountant.noise_for_epsilon(13.66, steps) as f32;
    out.comment(format!(
        "noise multipliers: eps=1.75 -> sigma={sigma_strong:.3}, eps=13.66 -> sigma={sigma_weak:.3}"
    ));
    let clip = 1.0;

    let configs: Vec<(String, Option<(f32, f32)>)> = vec![
        ("no DP".to_string(), None),
        ("eps=13.66".to_string(), Some((clip, sigma_weak))),
        ("eps=1.75".to_string(), Some((clip, sigma_strong))),
    ];

    out.row("algorithm,privacy,step,accuracy");
    for (privacy, dp) in &configs {
        let ada = run_one(&world, scale, *dp, AdaSgd::new(10, 99.7));
        let dyn_ = run_one(&world, scale, *dp, DynSgd::new());
        for (alg, history) in [("AdaSGD", &ada), ("DynSGD", &dyn_)] {
            for e in &history.evals {
                out.row(format!("{alg},{privacy},{},{:.4}", e.step, e.accuracy));
            }
            out.comment(format!(
                "{alg} {privacy}: final={:.4}",
                history.final_accuracy()
            ));
        }
    }
    out.finish();
}
