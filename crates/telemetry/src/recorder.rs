//! The concrete [`TelemetrySink`]: atomic counters, per-metric histograms,
//! per-shard apply/queue tracking, and the workspace's one monotonic clock.
//!
//! This module is why `crates/telemetry` carries the fleet-lint wall-clock
//! waiver: [`Recorder::now_ns`] reads `Instant`. Everything else in the
//! workspace that wants a timestamp must go through a sink handle, which
//! keeps measured wall-clock strictly separated from deterministic workload
//! generation.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::sink::{Counter, Latency, TelemetrySink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-shard aggregates behind one lock (reported off the hot path only
/// when telemetry is enabled; contention is bounded by the reporting rate).
#[derive(Debug, Default)]
struct ShardStats {
    /// Gradient applications attributed to each shard.
    applies: Vec<u64>,
    /// Distribution of observed pending-buffer depths (all shards pooled).
    queue_depth: Histogram,
    /// Deepest observed pending buffer per shard.
    max_depth: Vec<u64>,
}

/// The standard recorder sink.
pub struct Recorder {
    epoch: Instant,
    counters: [AtomicU64; Counter::ALL.len()],
    latency: [Mutex<Histogram>; Latency::ALL.len()],
    shards: Mutex<ShardStats>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder; its clock epoch is the construction instant.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: std::array::from_fn(|_| Mutex::new(Histogram::new())),
            shards: Mutex::new(ShardStats::default()),
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// A plain-data copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = Counter::ALL.map(|c| self.counter(c));
        let latency = Latency::ALL.map(|l| {
            self.latency[l as usize]
                .lock()
                .expect("latency histogram lock")
                .clone()
        });
        let shards = self.shards.lock().expect("shard stats lock");
        TelemetrySnapshot {
            counters,
            latency,
            shard_applies: shards.applies.clone(),
            shard_max_depth: shards.max_depth.clone(),
            queue_depth: shards.queue_depth.snapshot(),
        }
    }
}

impl TelemetrySink for Recorder {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of process uptime; fine for a harness.
        self.epoch.elapsed().as_nanos() as u64
    }

    fn record_latency(&self, metric: Latency, nanos: u64) {
        self.latency[metric as usize]
            .lock()
            .expect("latency histogram lock")
            .record(nanos);
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    fn queue_depth(&self, shard: usize, depth: u64) {
        let mut shards = self.shards.lock().expect("shard stats lock");
        if shards.max_depth.len() <= shard {
            shards.max_depth.resize(shard + 1, 0);
        }
        shards.max_depth[shard] = shards.max_depth[shard].max(depth);
        shards.queue_depth.record(depth);
    }

    fn shard_applies(&self, shard: usize, delta: u64) {
        let mut shards = self.shards.lock().expect("shard stats lock");
        if shards.applies.len() <= shard {
            shards.applies.resize(shard + 1, 0);
        }
        shards.applies[shard] += delta;
    }
}

/// Everything a [`Recorder`] accumulated, as plain data.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Counter values, indexed like [`Counter::ALL`].
    pub counters: [u64; Counter::ALL.len()],
    /// Full latency histograms, indexed like [`Latency::ALL`].
    pub latency: [Histogram; Latency::ALL.len()],
    /// Gradient applications per shard (empty if never reported).
    pub shard_applies: Vec<u64>,
    /// Deepest observed pending buffer per shard.
    pub shard_max_depth: Vec<u64>,
    /// Distribution of observed queue depths across all shards.
    pub queue_depth: HistogramSnapshot,
}

impl TelemetrySnapshot {
    /// Value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Summary of one latency metric.
    pub fn latency(&self, metric: Latency) -> HistogramSnapshot {
        self.latency[metric as usize].snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_aggregates_and_snapshots() {
        let r = Recorder::new();
        r.add(Counter::Requests, 2);
        r.add(Counter::Requests, 3);
        r.record_latency(Latency::RequestExchange, 1000);
        r.record_latency(Latency::RequestExchange, 2000);
        r.queue_depth(1, 4);
        r.queue_depth(0, 7);
        r.shard_applies(1, 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter(Counter::Requests), 5);
        assert_eq!(snap.latency(Latency::RequestExchange).count, 2);
        assert_eq!(snap.latency(Latency::SubmitExchange).count, 0);
        assert_eq!(snap.shard_applies, vec![0, 5]);
        assert_eq!(snap.shard_max_depth, vec![7, 4]);
        assert_eq!(snap.queue_depth.count, 2);
        assert_eq!(snap.queue_depth.max, 7);
    }

    #[test]
    fn clock_is_monotonic() {
        let r = Recorder::new();
        let a = r.now_ns();
        let b = r.now_ns();
        assert!(b >= a);
    }
}
