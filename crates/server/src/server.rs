//! The FLeet server: glues I-Prof, the controller and AdaSGD together behind
//! the request/result protocol of Fig. 2.

use crate::controller::{Controller, ControllerThresholds};
use crate::protocol::{ResultAck, TaskAssignment, TaskRequest, TaskResponse, TaskResult};
use crate::wire::{self, WireError};
use bytes::Bytes;
use fleet_core::{AdaSgd, ApplyMode, ParameterServer, ParameterServerConfig, WorkerUpdate};
use fleet_profiler::{IProf, Slo, WorkloadProfiler};
use std::collections::HashMap;

/// Configuration of a [`FleetServer`].
#[derive(Debug, Clone)]
pub struct FleetServerConfig {
    /// Learning rate γ applied to weighted gradients.
    pub learning_rate: f32,
    /// Aggregation parameter K (gradients per model update).
    pub aggregation_k: usize,
    /// Number of range-partitioned parameter-server shards aggregation fans
    /// out across (in lockstep mode results are identical at any shard
    /// count; more shards buy throughput on multi-core for large models).
    pub shards: usize,
    /// How the shards schedule their applies: [`ApplyMode::Lockstep`]
    /// (default, every shard applies on the same K-th submission) or
    /// [`ApplyMode::PerShard`] (each shard applies independently;
    /// assignments then carry the shard vector clock, and staleness is
    /// attributed per shard from the echoed read clock).
    pub apply_mode: ApplyMode,
    /// Expected percentage of non-stragglers (AdaSGD's s%).
    pub s_percentile: f64,
    /// Number of classes of the learning task (for the global label
    /// distribution).
    pub num_classes: usize,
    /// The per-task SLO handed to I-Prof.
    pub slo: Slo,
    /// Controller thresholds.
    pub thresholds: ControllerThresholds,
}

impl Default for FleetServerConfig {
    fn default() -> Self {
        Self {
            learning_rate: 5e-2,
            aggregation_k: 1,
            shards: 1,
            apply_mode: ApplyMode::Lockstep,
            s_percentile: 99.7,
            num_classes: 10,
            slo: Slo::paper_latency_default(),
            thresholds: ControllerThresholds::default(),
        }
    }
}

/// The FLeet middleware server.
#[derive(Debug)]
pub struct FleetServer {
    parameter_server: ParameterServer<AdaSgd>,
    iprof: IProf,
    controller: Controller,
    /// Device model of each worker, remembered from its last request so that
    /// result feedback can be routed to the right personalised I-Prof model.
    device_models: HashMap<u64, String>,
    config: FleetServerConfig,
}

impl FleetServer {
    /// Creates a server around an initial flat model parameter vector.
    pub fn new(initial_parameters: Vec<f32>, config: FleetServerConfig) -> Self {
        let aggregator = AdaSgd::new(config.num_classes, config.s_percentile);
        Self {
            parameter_server: ParameterServer::from_config(
                initial_parameters,
                aggregator,
                &ParameterServerConfig {
                    learning_rate: config.learning_rate,
                    aggregation_k: config.aggregation_k,
                    shards: config.shards.max(1),
                    apply_mode: config.apply_mode,
                },
            ),
            iprof: IProf::new(config.slo),
            controller: Controller::new(config.thresholds),
            device_models: HashMap::new(),
            config,
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &FleetServerConfig {
        &self.config
    }

    /// The current global model parameters.
    pub fn parameters(&self) -> &[f32] {
        self.parameter_server.parameters()
    }

    /// The server's logical clock (number of model updates so far in
    /// lockstep mode; the aggregation-round counter in per-shard mode).
    pub fn clock(&self) -> u64 {
        self.parameter_server.clock()
    }

    /// The per-shard vector clock (see
    /// [`fleet_core::ParameterServer::shard_clocks`]).
    pub fn shard_clocks(&self) -> Vec<u64> {
        self.parameter_server.shard_clocks()
    }

    /// The per-shard staleness attributed to the most recent result
    /// (per-shard mode; empty in lockstep — see
    /// [`fleet_core::ParameterServer::last_shard_staleness`]).
    pub fn last_shard_staleness(&self) -> &[u64] {
        self.parameter_server.last_shard_staleness()
    }

    /// Applies one shard's pending gradients immediately (per-shard mode
    /// only) — the scheduling freedom knob: a deployment can drain a shard
    /// ahead of its K-th submission when e.g. its segment is about to be
    /// handed to pull-heavy workers. See
    /// [`fleet_core::ParameterServer::flush_shard`].
    ///
    /// # Panics
    ///
    /// Panics in lockstep mode or when `shard` is out of range.
    pub fn flush_shard(&mut self, shard: usize) -> bool {
        self.parameter_server.flush_shard(shard)
    }

    /// Access to the controller statistics.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to I-Prof (e.g. to pre-train the cold-start models).
    pub fn iprof_mut(&mut self) -> &mut IProf {
        &mut self.iprof
    }

    /// Handles a learning-task request (steps 1–4 of Fig. 2).
    pub fn handle_request(&mut self, request: &TaskRequest) -> TaskResponse {
        self.device_models
            .insert(request.worker_id, request.device_model.clone());

        // Step 2: I-Prof bounds the workload.
        let batch = self
            .iprof
            .predict(&request.device_model, &request.device_features);
        // Step 3: AdaSGD computes the similarity with past learning tasks.
        let similarity = self
            .parameter_server
            .aggregator()
            .similarity_of(&request.label_distribution) as f32;
        // Step 4: the controller decides whether the task is worth running.
        match self.controller.admit(batch, similarity) {
            Ok(()) => TaskResponse::Assignment(TaskAssignment {
                model_parameters: self.parameter_server.parameters().to_vec(),
                model_version: self.parameter_server.clock(),
                // Per-shard servers hand out the vector clock so the worker
                // can echo it back and get per-shard staleness attribution;
                // lockstep assignments stay as before (empty).
                shard_clocks: match self.config.apply_mode {
                    ApplyMode::Lockstep => Vec::new(),
                    ApplyMode::PerShard => self.parameter_server.shard_clocks(),
                },
                mini_batch_size: batch,
            }),
            Err(reason) => TaskResponse::Rejected(reason),
        }
    }

    /// Handles a wire-encoded learning-task request: the byte-level entry
    /// point a transport (HTTP body, socket frame) would call.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] when the buffer is truncated, has an unknown
    /// version, or contains malformed fields.
    pub fn handle_request_wire(&mut self, raw: Bytes) -> Result<TaskResponse, WireError> {
        Ok(self.handle_request(&wire::decode_request(raw)?))
    }

    /// Handles a wire-encoded worker result: the byte-level entry point a
    /// transport would call for step 5.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] when the buffer is truncated, has an unknown
    /// version, or contains malformed fields.
    pub fn handle_result_wire(&mut self, raw: Bytes) -> Result<ResultAck, WireError> {
        Ok(self.handle_result(wire::decode_result(raw)?))
    }

    /// Handles a worker result (step 5): feeds the measured costs back to
    /// I-Prof and folds the gradient into the model with AdaSGD's weight.
    pub fn handle_result(&mut self, result: TaskResult) -> ResultAck {
        let device_model = self
            .device_models
            .get(&result.worker_id)
            .cloned()
            .unwrap_or_else(|| "unknown".to_string());
        // Feed the observation back into I-Prof. The features at request time
        // are approximated by the ones the device would report now; in the
        // real system the request features are cached server-side.
        let staleness = self
            .parameter_server
            .clock()
            .saturating_sub(result.model_version);
        let mut update = WorkerUpdate::new(
            result.gradient,
            staleness,
            result.label_distribution,
            result.num_samples,
            result.worker_id,
        );
        // A result carrying the read-time vector clock gets per-shard
        // staleness attribution (per-shard mode; a lockstep server ignores
        // it). Results from v1 peers fall back to the scalar staleness.
        if self.config.apply_mode == ApplyMode::PerShard
            && result
                .read_clock
                .as_ref()
                .is_some_and(|rc| rc.len() == self.parameter_server.num_shards())
        {
            update.read_clock = result.read_clock;
        }
        let outcome = self.parameter_server.submit(update);
        // Record the execution for the profiler (device features omitted from
        // the result message; use the slope directly via a synthetic feature
        // observation keyed by the device model).
        self.iprof.observe(
            &device_model,
            &fleet_device::DeviceFeatures::default(),
            result.num_samples,
            result.computation_seconds,
            result.energy_pct,
        );
        ResultAck {
            staleness,
            scaling_factor: outcome.scaling_factor,
            model_updated: outcome.applied,
            clock: outcome.clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Worker;
    use fleet_data::partition::non_iid_shards;
    use fleet_data::synthetic::{generate, SyntheticSpec};
    use fleet_device::profile::catalogue;
    use fleet_device::Device;
    use fleet_ml::models::mlp_classifier;
    use std::sync::Arc;

    fn build_world(num_workers: usize) -> (FleetServer, Vec<Worker>, Arc<fleet_data::Dataset>) {
        let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 200), 1));
        let users = non_iid_shards(&dataset, num_workers, 2, 2);
        let model = mlp_classifier(6, &[8], 4, 0);
        let server = FleetServer::new(
            model.parameters(),
            FleetServerConfig {
                num_classes: 4,
                learning_rate: 0.05,
                ..FleetServerConfig::default()
            },
        );
        let profiles = catalogue();
        let workers: Vec<Worker> = users
            .into_iter()
            .enumerate()
            .map(|(i, indices)| {
                Worker::new(
                    i as u64,
                    Device::new(profiles[i % profiles.len()].clone(), i as u64),
                    Arc::clone(&dataset),
                    indices,
                    mlp_classifier(6, &[8], 4, 0),
                    i as u64 + 100,
                )
            })
            .collect();
        (server, workers, dataset)
    }

    #[test]
    fn request_result_roundtrip_advances_the_model() {
        let (mut server, mut workers, _) = build_world(4);
        let before = server.parameters().to_vec();
        let mut updates = 0;
        for round in 0..3 {
            for worker in workers.iter_mut() {
                let request = worker.request();
                match server.handle_request(&request) {
                    TaskResponse::Assignment(assignment) => {
                        let result = worker.execute(&assignment).unwrap();
                        let ack = server.handle_result(result);
                        assert!(ack.scaling_factor > 0.0);
                        updates += 1;
                    }
                    TaskResponse::Rejected(reason) => {
                        panic!("permissive controller rejected a task in round {round}: {reason:?}")
                    }
                }
            }
        }
        assert_eq!(server.clock(), updates);
        assert_ne!(server.parameters(), before.as_slice());
    }

    #[test]
    fn staleness_is_derived_from_model_versions() {
        let (mut server, mut workers, _) = build_world(2);
        // Worker 0 pulls the model but is slow: worker 1 completes two tasks
        // in the meantime.
        let slow_request = workers[0].request();
        let slow_assignment = match server.handle_request(&slow_request) {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        };
        for _ in 0..2 {
            let request = workers[1].request();
            if let TaskResponse::Assignment(a) = server.handle_request(&request) {
                let result = workers[1].execute(&a).unwrap();
                server.handle_result(result);
            }
        }
        let slow_result = workers[0].execute(&slow_assignment).unwrap();
        let ack = server.handle_result(slow_result);
        assert_eq!(ack.staleness, 2);
        // The weight is dampened by staleness but may be boosted back up to
        // (at most) 1.0 when the slow worker's labels are novel.
        assert!(ack.scaling_factor > 0.0 && ack.scaling_factor <= 1.0);
    }

    #[test]
    fn wire_entry_points_drive_the_full_protocol() {
        let (mut server, mut workers, _) = build_world(4);
        let before = server.parameters().to_vec();
        for worker in workers.iter_mut() {
            let response = server
                .handle_request_wire(worker.request_wire())
                .expect("self-encoded request");
            match response {
                TaskResponse::Assignment(assignment) => {
                    let raw = worker.execute_wire(&assignment).unwrap();
                    let ack = server.handle_result_wire(raw).expect("self-encoded result");
                    assert!(ack.scaling_factor > 0.0);
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
        assert_eq!(server.clock(), 4);
        assert_ne!(server.parameters(), before.as_slice());
        // Malformed bytes surface as wire errors, not panics.
        assert!(server.handle_result_wire(Bytes::from(vec![9u8])).is_err());
    }

    #[test]
    fn sharded_server_matches_single_shard_reference() {
        let (mut sharded, mut workers, _) = build_world(4);
        let mut reference = FleetServer::new(
            sharded.parameters().to_vec(),
            FleetServerConfig {
                shards: 1,
                ..sharded.config().clone()
            },
        );
        sharded = FleetServer::new(
            sharded.parameters().to_vec(),
            FleetServerConfig {
                shards: 8,
                ..sharded.config().clone()
            },
        );
        for _ in 0..3 {
            for worker in workers.iter_mut() {
                let request = worker.request();
                let (a, b) = (
                    reference.handle_request(&request),
                    sharded.handle_request(&request),
                );
                assert_eq!(a, b);
                if let TaskResponse::Assignment(assignment) = a {
                    let result = worker.execute(&assignment).unwrap();
                    let ack_ref = reference.handle_result(result.clone());
                    let ack_sharded = sharded.handle_result(result);
                    assert_eq!(ack_ref, ack_sharded);
                    assert_eq!(reference.parameters(), sharded.parameters());
                }
            }
        }
        assert_eq!(reference.clock(), sharded.clock());
    }

    #[test]
    fn per_shard_mode_attributes_vector_clock_staleness_end_to_end() {
        let (base, mut workers, _) = build_world(2);
        let mut server = FleetServer::new(
            base.parameters().to_vec(),
            FleetServerConfig {
                shards: 4,
                aggregation_k: 2,
                apply_mode: ApplyMode::PerShard,
                ..base.config().clone()
            },
        );
        // Both workers pull at vector clock [0, 0, 0, 0].
        let pull = |server: &mut FleetServer, worker: &mut Worker| {
            let request = worker.request();
            match server.handle_request(&request) {
                TaskResponse::Assignment(a) => a,
                TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
            }
        };
        let a0 = pull(&mut server, &mut workers[0]);
        let a1 = pull(&mut server, &mut workers[1]);
        assert_eq!(a0.shard_clocks, vec![0; 4]);

        // First result buffers on every shard (K = 2) ...
        let r0 = workers[0].execute(&a0).unwrap();
        assert!(r0.read_clock.is_some(), "worker must echo the vector clock");
        let ack0 = server.handle_result(r0);
        assert!(!ack0.model_updated);
        // ... then shard 0 is drained ahead of its K-th submission.
        assert!(server.flush_shard(0));
        assert_eq!(server.shard_clocks(), vec![1, 0, 0, 0]);

        // The second result sees the divergence: shard 0 applied one update
        // since the worker's read, the others none.
        let r1 = workers[1].execute(&a1).unwrap();
        let ack1 = server.handle_result(r1);
        assert!(ack1.model_updated, "shards 1–3 reach K on this result");
        assert_eq!(server.last_shard_staleness(), &[1, 0, 0, 0]);
        assert_eq!(server.shard_clocks(), vec![1, 1, 1, 1]);
        assert!(ack1.scaling_factor > 0.0 && ack1.scaling_factor <= 1.0);
    }

    #[test]
    fn controller_thresholds_reject_small_batches() {
        let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 40), 3));
        let model = mlp_classifier(6, &[8], 4, 0);
        let mut server = FleetServer::new(
            model.parameters(),
            FleetServerConfig {
                num_classes: 4,
                thresholds: ControllerThresholds {
                    min_batch_size: usize::MAX,
                    max_similarity: None,
                },
                ..FleetServerConfig::default()
            },
        );
        let mut worker = Worker::new(
            0,
            Device::new(catalogue()[0].clone(), 0),
            dataset,
            (0..40).collect(),
            mlp_classifier(6, &[8], 4, 0),
            1,
        );
        let request = worker.request();
        match server.handle_request(&request) {
            TaskResponse::Rejected(_) => {}
            TaskResponse::Assignment(_) => panic!("expected rejection"),
        }
        assert_eq!(server.controller().rejected(), 1);
    }

    #[test]
    fn training_improves_accuracy_end_to_end() {
        let (mut server, mut workers, dataset) = build_world(6);
        let mut eval_model = mlp_classifier(6, &[8], 4, 0);
        let (inputs, labels) = dataset.batch(&(0..dataset.len()).collect::<Vec<_>>());

        eval_model.set_parameters(server.parameters()).unwrap();
        let before = fleet_ml::metrics::accuracy(&eval_model.predict(&inputs).unwrap(), &labels);

        for _ in 0..30 {
            for worker in workers.iter_mut() {
                let request = worker.request();
                if let TaskResponse::Assignment(mut a) = server.handle_request(&request) {
                    // Keep the batches small so the test stays fast.
                    a.mini_batch_size = a.mini_batch_size.min(32);
                    let result = worker.execute(&a).unwrap();
                    server.handle_result(result);
                }
            }
        }
        eval_model.set_parameters(server.parameters()).unwrap();
        let after = fleet_ml::metrics::accuracy(&eval_model.predict(&inputs).unwrap(), &labels);
        assert!(
            after > before + 0.1,
            "accuracy should improve: {before} -> {after}"
        );
    }
}
