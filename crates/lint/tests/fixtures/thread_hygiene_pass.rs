// Fixture: parallelism through the pool's public surface and shared state
// behind sync primitives. Expect zero findings.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    // thread::spawn mentioned in prose (and this comment) is fine; only
    // real call paths are flagged.
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

pub fn current_thread_name() -> Option<String> {
    // Reading thread metadata is fine — only spawn/Builder create threads.
    std::thread::current().name().map(str::to_owned)
}
