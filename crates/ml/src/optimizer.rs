//! Plain stochastic-gradient-descent optimiser with an optional learning-rate
//! schedule, used for the synchronous (SSGD) baseline and local training in
//! examples/tests.

use crate::gradient::Gradient;
use crate::model::Sequential;
use crate::Result;

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// `lr / (1 + decay * step)`.
    InverseTime {
        /// Decay constant applied per step.
        decay: f32,
    },
}

/// Mini-batch SGD.
#[derive(Debug, Clone)]
pub struct Sgd {
    base_lr: f32,
    schedule: LrSchedule,
    step: u64,
}

impl Sgd {
    /// Creates an optimiser with a constant learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Self {
            base_lr: learning_rate,
            schedule: LrSchedule::Constant,
            step: 0,
        }
    }

    /// Creates an optimiser with an inverse-time decay schedule.
    pub fn with_inverse_time_decay(learning_rate: f32, decay: f32) -> Self {
        Self {
            base_lr: learning_rate,
            schedule: LrSchedule::InverseTime { decay },
            step: 0,
        }
    }

    /// Learning rate that will be used by the next [`Sgd::step`] call.
    pub fn current_lr(&self) -> f32 {
        match self.schedule {
            LrSchedule::Constant => self.base_lr,
            LrSchedule::InverseTime { decay } => self.base_lr / (1.0 + decay * self.step as f32),
        }
    }

    /// Number of steps applied so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Applies one gradient to the model and advances the schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MlError::ParameterCountMismatch`] from the model.
    pub fn step(&mut self, model: &mut Sequential, gradient: &Gradient) -> Result<()> {
        let lr = self.current_lr();
        model.apply_gradient(gradient, lr)?;
        self.step += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use crate::layers::Dense;
    use crate::tensor::Tensor;

    #[test]
    fn constant_lr_does_not_change() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.current_lr(), 0.1);
        let mut model =
            Sequential::new().with_layer(Box::new(Dense::new(2, 2, Initializer::Xavier, 0)));
        let g = Gradient::zeros(model.parameter_count());
        opt.step(&mut model, &g).unwrap();
        assert_eq!(opt.current_lr(), 0.1);
        assert_eq!(opt.steps_taken(), 1);
    }

    #[test]
    fn inverse_time_decay_decreases() {
        let mut opt = Sgd::with_inverse_time_decay(1.0, 1.0);
        let mut model =
            Sequential::new().with_layer(Box::new(Dense::new(2, 2, Initializer::Xavier, 0)));
        let g = Gradient::zeros(model.parameter_count());
        let lr0 = opt.current_lr();
        opt.step(&mut model, &g).unwrap();
        let lr1 = opt.current_lr();
        opt.step(&mut model, &g).unwrap();
        let lr2 = opt.current_lr();
        assert!(lr0 > lr1 && lr1 > lr2);
        assert!((lr1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn step_moves_parameters_opposite_to_gradient() {
        let mut model =
            Sequential::new().with_layer(Box::new(Dense::new(1, 1, Initializer::Zeros, 0)));
        let mut opt = Sgd::new(0.5);
        let g = Gradient::from_vec(vec![1.0, 2.0]);
        opt.step(&mut model, &g).unwrap();
        let params = model.parameters();
        assert_eq!(params, vec![-0.5, -1.0]);
    }

    #[test]
    fn training_loop_converges_with_sgd() {
        let mut model =
            Sequential::new().with_layer(Box::new(Dense::new(2, 2, Initializer::Xavier, 7)));
        let mut opt = Sgd::new(0.2);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let y = vec![0, 1];
        let mut last = f32::MAX;
        for _ in 0..100 {
            let (loss, grad) = model.compute_gradient(&x, &y).unwrap();
            opt.step(&mut model, &grad).unwrap();
            last = loss;
        }
        assert!(last < 0.1, "loss should approach zero, got {last}");
    }
}
