//! Helper crate holding the runnable examples of the FLeet reproduction.
//!
//! The interesting code lives in the example binaries next to this file:
//!
//! * `quickstart.rs` — minimal Online FL round-trip through the middleware.
//! * `online_news_recommender.rs` — the paper's motivating scenario (§1, Fig. 1/6):
//!   a temporal recommendation workload trained online vs once per day.
//! * `staleness_awareness.rs` — AdaSGD vs DynSGD vs FedAvg under controlled staleness.
//! * `profiler_slo.rs` — I-Prof vs MAUI predicting per-device mini-batch sizes.
//! * `dp_training.rs` — differentially private Online FL.
//! * `socket_demo.rs` — multi-process Online FL over the socket transport:
//!   a `demo` mode proving cross-process digest parity and a `chaos` mode
//!   exercising the fault-tolerance envelope (torn frames, dead peers,
//!   overload) end to end.
//!
//! Run any of them with `cargo run -p fleet-examples --example <name>`.
