// Fixture: every kind of unjustified unsafe site. Expect four
// unsafe-safety findings (block, fn, impl, trait).

pub fn naked_block(p: *const u32) -> u32 {
    unsafe { *p }
}

pub unsafe fn naked_fn(p: *mut u8) {
    // SAFETY: this inner comment justifies nothing — it is below the site.
    let _ = p;
}

struct Wrapper(*const ());

unsafe impl Send for Wrapper {}

unsafe trait Contract {}
