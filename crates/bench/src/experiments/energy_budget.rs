//! §3.1 energy impact: the daily energy budget of Online FL on a user device
//! (the paper reports an average of 4 mWh/day ≈ 0.036 % of an 11 Wh battery).

use crate::{ExperimentWriter, Scale};
use fleet_device::profile::DeviceProfile;
use fleet_device::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Raspberry-Pi-like profile calibrated to the paper's measurements
/// (1.9 W idle, 2.1–2.3 W active, 5.6 s for batch 1 and 8.4 s for batch 100).
fn raspberry_pi_like() -> DeviceProfile {
    let mut p = DeviceProfile::custom("Raspberry Pi 4", 0.028, 2.0e-5, 0, 4, 0.0, 1.5);
    p.battery_mwh = 11_000.0;
    p.measurement_noise = 0.05;
    p
}

/// Simulates many user-days of Online FL contributions and reports the daily
/// energy statistics.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("energy_budget");
    out.comment("Section 3.1: daily energy budget of Online FL per user device");
    let user_days = scale.pick(200, 2000);
    let mut rng = StdRng::seed_from_u64(99);
    let mut daily_mwh = Vec::with_capacity(user_days);

    for day in 0..user_days {
        let mut device = Device::new(raspberry_pi_like(), day as u64);
        // A user contributes a handful of updates per day (the paper's §1
        // estimates ~220 training samples per day, delivered over a few
        // updates whose batch sizes follow the I-Prof output distribution).
        let updates_today = rng.gen_range(1..=8);
        let mut consumed_mwh = 0.0;
        for _ in 0..updates_today {
            let batch = rng.gen_range(1..=100);
            let exec = device.execute_task(batch);
            consumed_mwh += exec.energy_mwh;
            device.idle(3600.0);
        }
        daily_mwh.push(consumed_mwh);
    }

    daily_mwh.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean: f32 = daily_mwh.iter().sum::<f32>() / daily_mwh.len() as f32;
    let median = daily_mwh[daily_mwh.len() / 2];
    let p99 = daily_mwh[(daily_mwh.len() as f32 * 0.99) as usize - 1];
    let max = *daily_mwh.last().unwrap();
    let battery = 11_000.0f32;

    out.row("statistic,daily_energy_mwh,pct_of_11wh_battery");
    out.row(format!("mean,{mean:.2},{:.4}", mean / battery * 100.0));
    out.row(format!(
        "median,{median:.2},{:.4}",
        median / battery * 100.0
    ));
    out.row(format!("p99,{p99:.2},{:.4}", p99 / battery * 100.0));
    out.row(format!("max,{max:.2},{:.4}", max / battery * 100.0));
    out.comment("paper: mean 4 mWh, median 3.3, p99 13.4, max 44 => 0.036% of battery per day");
    out.finish();
}
