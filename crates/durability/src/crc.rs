//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame check
//! behind every journal record and checkpoint container. Table-driven, built
//! at compile time; no dependency, no `unsafe`.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data = b"durable crash recovery journal record".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
