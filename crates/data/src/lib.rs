//! # fleet-data
//!
//! Data substrate for the FLeet reproduction: synthetic datasets standing in
//! for MNIST / E-MNIST / CIFAR-100, the paper's IID and non-IID federated
//! partitioning schemes, label distributions with the Bhattacharyya
//! coefficient (used by AdaSGD's similarity boosting, §2.3 of the paper), and
//! the synthetic temporal hashtag stream standing in for the Twitter crawl of
//! §3.1.
//!
//! # Example
//!
//! ```
//! use fleet_data::synthetic::{SyntheticSpec, generate};
//! use fleet_data::partition::non_iid_shards;
//!
//! let dataset = generate(&SyntheticSpec::mnist_like(200), 1);
//! let users = non_iid_shards(&dataset, 10, 2, 7);
//! assert_eq!(users.len(), 10);
//! ```

#![forbid(unsafe_code)]

pub mod dataset;
pub mod label_distribution;
pub mod partition;
pub mod sampling;
pub mod synthetic;
pub mod twitter;

pub use dataset::Dataset;
pub use label_distribution::{GlobalLabelDistribution, LabelDistribution};
