//! The [`Sequential`] model container.
//!
//! FLeet exchanges *flat* parameter and gradient vectors between the server
//! and its workers (Fig. 2 of the paper): the server sends model parameters,
//! the worker computes a gradient on its local mini-batch and sends the flat
//! gradient back. `Sequential` therefore exposes
//! [`Sequential::parameters`] / [`Sequential::set_parameters`] and
//! [`Sequential::gradient`] as its primary interface, in addition to the usual
//! forward/backward passes.

use crate::gradient::Gradient;
use crate::layer::Layer;
use crate::loss::SoftmaxCrossEntropy;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// A feed-forward stack of layers trained with softmax cross-entropy.
///
/// `Clone` produces a full replica (parameters, gradients and caches); the
/// parallel async simulation clones one replica per worker thread.
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    loss: SoftmaxCrossEntropy,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self {
            layers: Vec::new(),
            loss: SoftmaxCrossEntropy::new(),
        }
    }

    /// Appends a layer, returning `self` for chaining.
    pub fn with_layer(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Runs a forward pass through every layer.
    ///
    /// Each intermediate activation is handed back to the layer that produced
    /// it via [`Layer::recycle_output`] as soon as the next layer has
    /// consumed it, so layers with output workspaces (convolution, pooling)
    /// run allocation-free after the first pass.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Ok(input.clone());
        }
        let mut current = self.layers[0].forward(input)?;
        for i in 1..self.layers.len() {
            let (done, rest) = self.layers.split_at_mut(i);
            let next = rest[0].forward(&current)?;
            done[i - 1].recycle_output(std::mem::replace(&mut current, next));
        }
        Ok(current)
    }

    /// Computes the mean loss and accumulates parameter gradients for a batch
    /// of `inputs` with integer `labels`. Returns the loss.
    ///
    /// Gradients accumulate across calls until [`Sequential::zero_gradients`]
    /// is invoked, which matches how a FLeet worker computes one gradient per
    /// learning task.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors from the layers and the loss.
    pub fn backward(&mut self, inputs: &Tensor, labels: &[usize]) -> Result<f32> {
        let logits = self.forward(inputs)?;
        let (loss, mut grad) = self.loss.forward(&logits, labels)?;
        // Mirror of the forward pass: every consumed gradient tensor is
        // handed back to the layer that produced it ([`Layer::recycle_grad`])
        // so the backward chain runs allocation-free after the first step.
        for i in (1..self.layers.len()).rev() {
            let next = self.layers[i].backward(&grad)?;
            let consumed = std::mem::replace(&mut grad, next);
            if i + 1 < self.layers.len() {
                self.layers[i + 1].recycle_grad(consumed);
            }
        }
        // The first layer's input gradient has no consumer; let the layer
        // skip computing it (a full GEMM + scatter for convolutions).
        if let Some(first) = self.layers.first_mut() {
            first.backward_input_unneeded(&grad)?;
        }
        if self.layers.len() > 1 {
            self.layers[1].recycle_grad(grad);
        }
        Ok(loss)
    }

    /// Clears all accumulated parameter gradients.
    pub fn zero_gradients(&mut self) {
        for layer in &mut self.layers {
            layer.zero_gradients();
        }
    }

    /// Returns all model parameters as one flat vector (layer order, then
    /// parameter order within the layer).
    pub fn parameters(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.parameter_count());
        for layer in &self.layers {
            for p in layer.parameters() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Overwrites all model parameters from a flat vector produced by
    /// [`Sequential::parameters`] (possibly of another replica of the same
    /// architecture).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ParameterCountMismatch`] when the length differs
    /// from [`Sequential::parameter_count`].
    pub fn set_parameters(&mut self, flat: &[f32]) -> Result<()> {
        let expected = self.parameter_count();
        if flat.len() != expected {
            return Err(MlError::ParameterCountMismatch {
                expected,
                actual: flat.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            for p in layer.parameters_mut() {
                let len = p.len();
                p.data_mut().copy_from_slice(&flat[offset..offset + len]);
                offset += len;
            }
        }
        Ok(())
    }

    /// Returns the currently accumulated gradient as a flat [`Gradient`] in
    /// the same layout as [`Sequential::parameters`].
    pub fn gradient(&self) -> Gradient {
        let mut out = Vec::with_capacity(self.parameter_count());
        for layer in &self.layers {
            for g in layer.gradients() {
                out.extend_from_slice(g.data());
            }
        }
        Gradient::from_vec(out)
    }

    /// Applies a parameter delta: `params <- params - learning_rate * gradient`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ParameterCountMismatch`] when the gradient length
    /// differs from the parameter count.
    pub fn apply_gradient(&mut self, gradient: &Gradient, learning_rate: f32) -> Result<()> {
        let expected = self.parameter_count();
        if gradient.len() != expected {
            return Err(MlError::ParameterCountMismatch {
                expected,
                actual: gradient.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            for p in layer.parameters_mut() {
                let len = p.len();
                for (value, g) in p
                    .data_mut()
                    .iter_mut()
                    .zip(gradient.as_slice()[offset..offset + len].iter())
                {
                    *value -= learning_rate * g;
                }
                offset += len;
            }
        }
        Ok(())
    }

    /// Convenience: computes the gradient of the loss on one mini-batch
    /// without disturbing previously accumulated gradients, returning
    /// `(loss, gradient)`.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    pub fn compute_gradient(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
    ) -> Result<(f32, Gradient)> {
        self.zero_gradients();
        let loss = self.backward(inputs, labels)?;
        Ok((loss, self.gradient()))
    }

    /// Predicted class index for every row of `inputs`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward pass.
    pub fn predict(&mut self, inputs: &Tensor) -> Result<Vec<usize>> {
        Ok(self.forward(inputs)?.argmax_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use crate::layers::{Dense, Relu};

    fn tiny_model() -> Sequential {
        Sequential::new()
            .with_layer(Box::new(Dense::new(4, 8, Initializer::Xavier, 1)))
            .with_layer(Box::new(Relu::new()))
            .with_layer(Box::new(Dense::new(8, 3, Initializer::Xavier, 2)))
    }

    #[test]
    fn parameter_roundtrip() {
        let mut model = tiny_model();
        let params = model.parameters();
        assert_eq!(params.len(), model.parameter_count());
        let doubled: Vec<f32> = params.iter().map(|v| v * 2.0).collect();
        model.set_parameters(&doubled).unwrap();
        assert_eq!(model.parameters(), doubled);
    }

    #[test]
    fn set_parameters_rejects_wrong_length() {
        let mut model = tiny_model();
        assert!(matches!(
            model.set_parameters(&[0.0; 3]),
            Err(MlError::ParameterCountMismatch { .. })
        ));
    }

    #[test]
    fn gradient_has_parameter_length() {
        let mut model = tiny_model();
        let inputs = Tensor::ones(&[2, 4]);
        let (_, grad) = model.compute_gradient(&inputs, &[0, 1]).unwrap();
        assert_eq!(grad.len(), model.parameter_count());
        assert!(grad.l2_norm() > 0.0);
    }

    #[test]
    fn apply_gradient_changes_parameters() {
        let mut model = tiny_model();
        let before = model.parameters();
        let inputs = Tensor::ones(&[2, 4]);
        let (_, grad) = model.compute_gradient(&inputs, &[0, 1]).unwrap();
        model.apply_gradient(&grad, 0.1).unwrap();
        assert_ne!(model.parameters(), before);
    }

    #[test]
    fn apply_gradient_rejects_wrong_length() {
        let mut model = tiny_model();
        assert!(model.apply_gradient(&Gradient::zeros(1), 0.1).is_err());
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut model = tiny_model();
        // Two well-separated clusters.
        let inputs = Tensor::from_vec(
            vec![
                1.0, 1.0, 0.0, 0.0, //
                0.9, 1.1, 0.0, 0.1, //
                0.0, 0.0, 1.0, 1.0, //
                0.1, 0.0, 1.1, 0.9,
            ],
            &[4, 4],
        );
        let labels = vec![0, 0, 1, 1];
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            let (loss, grad) = model.compute_gradient(&inputs, &labels).unwrap();
            model.apply_gradient(&grad, 0.1).unwrap();
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss did not decrease: {first_loss:?} -> {last_loss}"
        );
        assert_eq!(model.predict(&inputs).unwrap(), labels);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut model = tiny_model();
        let inputs = Tensor::ones(&[1, 4]);
        model.zero_gradients();
        model.backward(&inputs, &[0]).unwrap();
        let g1 = model.gradient();
        model.backward(&inputs, &[0]).unwrap();
        let g2 = model.gradient();
        assert!((g2.l2_norm() - 2.0 * g1.l2_norm()).abs() < 1e-4);
        model.zero_gradients();
        assert_eq!(model.gradient().l2_norm(), 0.0);
    }

    #[test]
    fn replicas_stay_in_sync_via_flat_parameters() {
        // The FLeet worker/server exchange: replica B adopts replica A's
        // parameters and must produce identical outputs.
        let mut a = tiny_model();
        let mut b = tiny_model();
        b.set_parameters(&a.parameters()).unwrap();
        let x = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[1, 4]);
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }
}
