//! # fleet-telemetry
//!
//! The measurement layer of the FLeet middleware: a small [`TelemetrySink`]
//! trait the serving components report through, deterministic fixed-bucket
//! latency [`Histogram`]s, process resource capture, and the writer for the
//! versioned `fleet-bench-v2` JSON that `scripts/bench_compare.py` diffs.
//!
//! ## Where wall clocks live
//!
//! This crate is the **only** place in the workspace (outside the bench
//! harnesses and the transport's socket-deadline module) allowed to read
//! wall clocks — `scripts/ci.sh`'s fleet-lint gate enforces exactly that
//! scope. Instrumented code never touches `Instant`: it asks its sink for
//! timestamps via [`TelemetrySink::now_ns`] and reports durations as
//! differences. The no-op sink answers `0`, so a disabled handle costs one
//! branch and no syscalls on the hot path, and workload *generation* (the
//! load harness's virtual-time schedules) stays bit-stable because nothing
//! outside this crate can observe real time.
//!
//! ## The pieces
//!
//! * [`TelemetrySink`] / [`TelemetryHandle`] — the reporting interface; the
//!   transport server, `FleetServer` and the simulation all emit through it
//!   ([`sink`]).
//! * [`Histogram`] — HDR-style log-linear fixed buckets (5 significant
//!   bits, ≤ 1/32 relative error), allocation-free `record`, exact
//!   deterministic merge ([`hist`]).
//! * [`Recorder`] — the concrete sink: per-metric histograms, atomic
//!   counters, per-shard apply counts and queue-depth tracking, and the one
//!   monotonic clock ([`recorder`]).
//! * [`ResourceUsage`] — max RSS, user/system CPU seconds and context
//!   switches from `/proc/self` ([`resource`]).
//! * [`BenchReport`] — the `fleet-bench-v2` JSON writer; the schema is
//!   frozen in this crate's README ([`report`]).

#![forbid(unsafe_code)]

pub mod hist;
pub mod recorder;
pub mod report;
pub mod resource;
pub mod sink;

pub use hist::{Histogram, HistogramSnapshot};
pub use recorder::{Recorder, TelemetrySnapshot};
pub use report::{BenchEntry, BenchReport, FieldValue};
pub use resource::ResourceUsage;
pub use sink::{Counter, Latency, NoopSink, TelemetryHandle, TelemetrySink};
