//! Helpers for evaluating profiler accuracy against an SLO
//! (the deviation statistics reported in Figs. 12 and 13 of the paper).

/// Absolute deviations of measured costs from an SLO target.
pub fn deviations(measured: &[f32], slo: f32) -> Vec<f32> {
    measured.iter().map(|&m| (m - slo).abs()).collect()
}

/// The `p`-th percentile (0–100) of a set of values using nearest-rank
/// interpolation. Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f32], p: f32) -> f32 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0 * (sorted.len() - 1) as f32).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Summary statistics of SLO deviations for one profiler.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviationStats {
    /// Mean absolute deviation.
    pub mean: f32,
    /// Median absolute deviation.
    pub p50: f32,
    /// 90th-percentile absolute deviation (the headline number of §3.3).
    pub p90: f32,
    /// Maximum absolute deviation.
    pub max: f32,
    /// Number of learning tasks measured.
    pub count: usize,
}

impl DeviationStats {
    /// Computes the statistics of `measured` costs against an SLO target.
    pub fn from_measurements(measured: &[f32], slo: f32) -> Self {
        let devs = deviations(measured, slo);
        if devs.is_empty() {
            return Self::default();
        }
        Self {
            mean: devs.iter().sum::<f32>() / devs.len() as f32,
            p50: percentile(&devs, 50.0),
            p90: percentile(&devs, 90.0),
            max: devs.iter().cloned().fold(0.0, f32::max),
            count: devs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviations_are_absolute() {
        assert_eq!(deviations(&[2.0, 4.0], 3.0), vec![1.0, 1.0]);
    }

    #[test]
    fn percentile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&a, 90.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        percentile(&[1.0], 150.0);
    }

    #[test]
    fn stats_from_measurements() {
        let stats = DeviationStats::from_measurements(&[2.0, 3.0, 4.0, 10.0], 3.0);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.max, 7.0);
        assert!((stats.mean - (1.0 + 0.0 + 1.0 + 7.0) / 4.0).abs() < 1e-6);
        assert!(stats.p90 >= stats.p50);
    }

    #[test]
    fn empty_measurements_give_default() {
        assert_eq!(
            DeviationStats::from_measurements(&[], 3.0),
            DeviationStats::default()
        );
    }
}
