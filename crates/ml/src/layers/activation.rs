//! Activation layers.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// Rectified Linear Unit: `max(0, x)` applied element-wise.
///
/// # Example
///
/// ```
/// use fleet_ml::layers::Relu;
/// use fleet_ml::layer::Layer;
/// use fleet_ml::tensor::Tensor;
///
/// # fn main() -> Result<(), fleet_ml::MlError> {
/// let mut relu = Relu::new();
/// let out = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]))?;
/// assert_eq!(out.data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU activation layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let out = input.mul(&mask);
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| {
            MlError::InvalidArgument("Relu::backward called before forward".to_string())
        })?;
        if mask.shape() != grad_output.shape() {
            return Err(MlError::ShapeMismatch {
                expected: mask.shape().to_vec(),
                actual: grad_output.shape().to_vec(),
                context: "Relu::backward".to_string(),
            });
        }
        Ok(grad_output.mul(mask))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn gradients(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_gradients(&mut self) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let out = relu
            .forward(&Tensor::from_vec(vec![-2.0, -0.1, 0.0, 0.5, 3.0], &[1, 5]))
            .unwrap();
        assert_eq!(out.data(), &[0.0, 0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]))
            .unwrap();
        let grad = relu
            .backward(&Tensor::from_vec(vec![5.0, 5.0], &[1, 2]))
            .unwrap();
        assert_eq!(grad.data(), &[0.0, 5.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[1, 1])).is_err());
    }

    #[test]
    fn has_no_parameters() {
        let relu = Relu::new();
        assert_eq!(relu.parameter_count(), 0);
    }
}
