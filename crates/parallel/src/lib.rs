//! Deterministic data-parallel helpers for the FLeet hot paths, backed by a
//! persistent worker pool.
//!
//! This is the workspace's stand-in for `rayon` (which is unavailable in the
//! network-less build environment): a lazily-spawned, channel-fed pool of
//! `max_threads() - 1` workers with a rayon-like surface —
//! [`parallel_chunks_mut`] for disjoint in-place work (the matmul kernels),
//! [`parallel_map`] for independent computations, [`parallel_map_with`] for
//! per-thread scratch state (the per-round worker gradients in
//! `fleet_server::simulation`) and [`parallel_uneven_zip_mut`] for fan-out
//! over unequal contiguous ranges paired with per-range state (the sharded
//! parameter server in `fleet_core`).
//!
//! # Why a pool
//!
//! Earlier revisions spawned scoped `std::thread`s per call, which charged
//! every kernel fan-out, shard application and K-gradient round tens of
//! microseconds of thread-creation latency. The pool spawns its workers once,
//! on the first fan-out that needs them, and afterwards a fan-out is one
//! enqueue + unpark per worker. The calling thread always executes slot 0 of
//! the fan-out itself, so a width-`w` fan-out wakes only `w - 1` workers and
//! `max_threads() == 1` never touches the pool at all.
//!
//! # Determinism contract
//!
//! All helpers partition work into *contiguous* ranges and write each output
//! exactly once from exactly one thread, so results are bit-for-bit identical
//! to the serial execution regardless of thread count or scheduling. The
//! partition depends only on the work size and [`max_threads`], never on
//! which pool worker runs which slot. Nothing here may introduce
//! reduction-order nondeterminism; keep it that way.
//!
//! # Thread count and nesting
//!
//! [`max_threads`] honours a [`set_max_threads`] override, then
//! `FLEET_NUM_THREADS`, then `std::thread::available_parallelism`. With one
//! thread every helper runs the work inline with zero pool traffic. Fan-out
//! slots run with nested fan-out suppressed: a parallel kernel called from
//! inside a [`parallel_map`] task executes inline instead of flooding the
//! pool queues with `threads²` jobs. Worker panics are forwarded to the
//! calling thread after the whole fan-out drains, matching the scoped-thread
//! behaviour this pool replaced.

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

static THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// True while this thread is executing a fan-out slot; parallel helpers
    /// run inline instead of nesting another fan-out.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Maximum worker threads: the [`set_max_threads`] override if one was
/// installed, else env `FLEET_NUM_THREADS`, else the hardware's available
/// parallelism, else 1. Cached after the first call; the pool is sized to
/// this value minus the calling thread.
pub fn max_threads() -> usize {
    *THREADS.get_or_init(|| {
        std::env::var("FLEET_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Installs the thread count programmatically, winning over the lazy env
/// lookup if called before the first [`max_threads`]. Returns whether the
/// value took effect (false once the count is already cached). Exists so
/// tests can pin a parallel configuration without `std::env::set_var`, which
/// is unsound once threads are running.
pub fn set_max_threads(threads: usize) -> bool {
    threads > 0 && THREADS.set(threads).is_ok()
}

fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    /// Restores the flag even when `f` unwinds: `fan_out` catches slot
    /// panics (to defer them past the drain barrier) and the process keeps
    /// running, so a leaked `true` would silently disable all future
    /// parallelism on this thread.
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            IN_PARALLEL_REGION.with(|flag| flag.set(prev));
        }
    }
    let _restore = Restore(IN_PARALLEL_REGION.with(|flag| flag.replace(true)));
    f()
}

#[cfg(test)]
fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

fn fan_out_width(work_items: usize) -> usize {
    if IN_PARALLEL_REGION.with(Cell::get) {
        1
    } else {
        max_threads().min(work_items)
    }
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// One queued fan-out slot: a pointer to the caller's stack-held
/// [`FanOutHeader`] plus the slot index this worker should execute. The
/// header is guaranteed to outlive the job by the `remaining` handshake in
/// [`fan_out`], which blocks the caller until every slot has finished.
struct Job {
    header: *const FanOutHeader,
    slot: usize,
}

// SAFETY: the header pointer is only dereferenced while the originating
// `fan_out` call keeps the pointee alive (it parks until `remaining` reaches
// zero), and `FanOutHeader` itself only exposes `Sync` state.
unsafe impl Send for Job {}

/// Type-erased fan-out shared between the caller and the workers it enlists.
struct FanOutHeader {
    /// Calls the caller's closure for one slot: `run(ctx, slot)`.
    run: unsafe fn(*const (), usize),
    /// The caller's `&closure`, erased.
    ctx: *const (),
    /// Slots not yet finished (workers only; the caller's own slot 0 is not
    /// counted). The caller parks until this reaches zero.
    remaining: AtomicUsize,
    /// Handle used to unpark the caller when the last slot finishes.
    caller: std::thread::Thread,
    /// First worker panic, forwarded to the caller after the fan-out drains.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `run`/`ctx` point at a `Sync` closure owned by the (blocked)
// caller; the remaining fields are synchronisation primitives.
unsafe impl Sync for FanOutHeader {}

/// A single worker's job queue.
#[derive(Default)]
struct WorkerQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl WorkerQueue {
    fn push(&self, job: Job) {
        self.jobs
            .lock()
            .expect("worker queue poisoned")
            .push_back(job);
        self.ready.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().expect("worker queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self.ready.wait(jobs).expect("worker queue poisoned");
        }
    }
}

/// The process-wide pool: one queue per worker thread. Workers are spawned
/// once, on the first fan-out wider than one slot, and live for the rest of
/// the process (they are detached; process exit reaps them).
struct Pool {
    queues: Vec<&'static WorkerQueue>,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = max_threads().saturating_sub(1);
            let queues: Vec<&'static WorkerQueue> = (0..workers)
                .map(|i| {
                    let queue: &'static WorkerQueue = Box::leak(Box::default());
                    spawn_worker(i, queue);
                    queue
                })
                .collect();
            Pool { queues }
        })
    }
}

fn spawn_worker(index: usize, queue: &'static WorkerQueue) {
    std::thread::Builder::new()
        .name(format!("fleet-parallel-{index}"))
        .spawn(move || loop {
            let job = queue.pop();
            // SAFETY: the originating `fan_out` keeps the header (and the
            // closure it points to) alive until `remaining` hits zero, which
            // cannot happen before this slot's `fetch_sub` below.
            let header = unsafe { &*job.header };
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: `header.run` is always `call_slot::<F>` paired by
                // `fan_out` with a `header.ctx` erased from the same `&F`,
                // which the same liveness argument as above keeps valid for
                // the duration of this call.
                run_as_worker(|| unsafe { (header.run)(header.ctx, job.slot) });
            }));
            if let Err(payload) = outcome {
                header
                    .panic
                    .lock()
                    .expect("panic slot poisoned")
                    .get_or_insert(payload);
            }
            // Clone the caller handle *before* the decrement: the moment
            // `remaining` reaches zero the caller may return and invalidate
            // `header`, so nothing may touch it afterwards.
            let caller = header.caller.clone();
            if header.remaining.fetch_sub(1, Ordering::Release) == 1 {
                caller.unpark();
            }
        })
        .expect("failed to spawn fleet-parallel worker");
}

/// Un-erases the fan-out closure and runs one slot of it.
///
/// # Safety
///
/// `ctx` must be the pointer `fan_out::<F>` erased from `&F` — same `F`, so
/// the cast below restores the original type — and that `F` must still be
/// alive, which `fan_out` guarantees by not returning until every slot has
/// decremented `remaining`.
unsafe fn call_slot<F: Fn(usize) + Sync>(ctx: *const (), slot: usize) {
    // SAFETY: `ctx` was erased from `&F` by `fan_out`, which outlives us.
    unsafe { (*ctx.cast::<F>())(slot) }
}

/// Runs `task(slot)` for every `slot in 0..width`, slot 0 on the calling
/// thread and the rest on pool workers, and returns once all slots finished.
/// Worker panics (and the caller's own) propagate after the fan-out drains,
/// so borrowed data is never freed while a worker can still touch it.
fn fan_out<F: Fn(usize) + Sync>(width: usize, task: F) {
    if width <= 1 {
        if width == 1 {
            task(0);
        }
        return;
    }
    let header = FanOutHeader {
        run: call_slot::<F>,
        ctx: (&raw const task).cast(),
        remaining: AtomicUsize::new(width - 1),
        caller: std::thread::current(),
        panic: Mutex::new(None),
    };
    let pool = Pool::global();
    // Hard assert, checked before anything is queued: failing midway through
    // the push loop would unwind the stack-held header while queued jobs
    // still point at it.
    assert!(width - 1 <= pool.queues.len(), "fan-out wider than pool");
    for slot in 1..width {
        pool.queues[slot - 1].push(Job {
            header: &raw const header,
            slot,
        });
    }
    // The caller is enlisted as slot 0. Its own panic must not unwind past
    // `header` while workers still reference it, so defer it too.
    let own = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_as_worker(|| task(0));
    }));
    while header.remaining.load(Ordering::Acquire) > 0 {
        std::thread::park();
    }
    if let Some(payload) = header.panic.lock().expect("panic slot poisoned").take() {
        std::panic::resume_unwind(payload);
    }
    if let Err(payload) = own {
        std::panic::resume_unwind(payload);
    }
}

/// A raw pointer that may cross threads: the helpers below hand each fan-out
/// slot a *disjoint* region computed from this base, which is what makes the
/// aliasing sound.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see the struct docs — every dereference targets a slot-private
// disjoint range of the pointee.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing the wrapper between threads only shares the *address*;
// the disjoint-slot discipline above means no two threads ever form
// references to the same element through it, so `&SendPtr<T>` is as safe to
// share as the `usize` it wraps.
unsafe impl<T: Send> Sync for SendPtr<T> {}

// ---------------------------------------------------------------------------
// Public helpers
// ---------------------------------------------------------------------------

/// Splits `data` into at most [`max_threads`] contiguous chunks of whole
/// `unit`-sized blocks and runs `f(first_block_index, chunk)` on each, in
/// parallel on the persistent pool. `unit` is the indivisible block length
/// (e.g. one matrix row); every chunk is a multiple of `unit` except possibly
/// the last.
///
/// Runs inline when the data is a single block, only one thread is
/// available, or the caller is itself a fan-out slot.
///
/// # Panics
///
/// Panics if `unit` is zero.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], unit: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit block length must be positive");
    let blocks = data.len().div_ceil(unit);
    let threads = fan_out_width(blocks);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let blocks_per_chunk = blocks.div_ceil(threads);
    let chunk_len = blocks_per_chunk * unit;
    let chunks = data.len().div_ceil(chunk_len);
    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    fan_out(chunks, |slot| {
        // Bind the whole wrapper so edition-2021 disjoint capture does not
        // reach through to the bare (non-Sync) pointer field.
        let SendPtr(base) = { base };
        let start = slot * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: [start, end) ranges are disjoint across slots and within
        // the original slice; the borrow is alive for the whole fan-out.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.add(start), end - start) };
        f(slot * blocks_per_chunk, chunk);
    });
}

/// Fans out over *unequal* contiguous ranges of a flat vector, pairing each
/// range with its own per-range state: `data` is split into
/// `lens[0], lens[1], …` consecutive chunks and `f(i, &mut items[i], chunk_i)`
/// runs for every range, with consecutive ranges grouped onto at most
/// [`max_threads`] pool slots. This is the sharded parameter server's
/// primitive: `items` are the shard states, `data` is the flat parameter
/// vector and `lens` the shard lengths. Ranges are balanced across slots by
/// total *elements*, not range count, so one oversized shard among small ones
/// gets a slot to itself instead of dragging its groupmates' latency up.
///
/// Every range is processed exactly once, from exactly one thread, in a way
/// that is bit-for-bit identical to the serial loop — the ranges are disjoint
/// and `f` receives them in index order within each slot, so no
/// reduction-order nondeterminism can arise. Runs inline for a single range,
/// a single thread, or when called from inside a fan-out slot.
///
/// # Panics
///
/// Panics if `items.len() != lens.len()` or `lens` does not sum to
/// `data.len()`.
pub fn parallel_uneven_zip_mut<T, U, F>(items: &mut [T], data: &mut [U], lens: &[usize], f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T, &mut [U]) + Sync,
{
    assert_eq!(
        items.len(),
        lens.len(),
        "one length per item: {} items vs {} lens",
        items.len(),
        lens.len()
    );
    assert_eq!(
        lens.iter().sum::<usize>(),
        data.len(),
        "range lengths must cover the data exactly"
    );
    let run_group = |first: usize, group: &mut [T], group_lens: &[usize], group_data: &mut [U]| {
        let mut rest = group_data;
        for (i, (item, &len)) in group.iter_mut().zip(group_lens).enumerate() {
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            f(first + i, item, chunk);
        }
    };
    let threads = fan_out_width(items.len());
    if threads <= 1 {
        run_group(0, items, lens, data);
        return;
    }
    let groups = group_by_elements(lens, threads);
    let items_base = SendPtr(items.as_mut_ptr());
    let data_base = SendPtr(data.as_mut_ptr());
    fan_out(groups.len(), |slot| {
        let (SendPtr(items_base), SendPtr(data_base)) = { (items_base, data_base) };
        let g = &groups[slot];
        // SAFETY: groups partition both `items` and `data` into disjoint
        // contiguous ranges, each visited by exactly one slot.
        let (group, group_data) = unsafe {
            (
                std::slice::from_raw_parts_mut(items_base.add(g.first), g.count),
                std::slice::from_raw_parts_mut(data_base.add(g.elem_offset), g.elems),
            )
        };
        run_group(
            g.first,
            group,
            &lens[g.first..g.first + g.count],
            group_data,
        );
    });
}

/// One contiguous run of ranges assigned to a fan-out slot.
#[derive(Debug, PartialEq, Eq)]
struct RangeGroup {
    /// Index of the first range in the group.
    first: usize,
    /// Number of ranges in the group.
    count: usize,
    /// Element offset of the group's data within the flat vector.
    elem_offset: usize,
    /// Total elements across the group's ranges.
    elems: usize,
}

/// Partitions `lens` into at most `groups` contiguous groups balanced by
/// total *elements*: each group takes ranges toward the ceiling-average of
/// the elements still unassigned (recomputed per group, so one huge range
/// cannot starve the remaining slots), stopping short of a range when that
/// lands closer to the target than overshooting past it. Depends only on
/// `lens` and `groups`, never on scheduling — the partition, like every
/// helper here, is deterministic for a given thread count.
fn group_by_elements(lens: &[usize], groups: usize) -> Vec<RangeGroup> {
    let mut out = Vec::with_capacity(groups.min(lens.len()));
    let mut first = 0;
    let mut elem_offset = 0;
    let mut remaining_elems: usize = lens.iter().sum();
    for g in 0..groups {
        if first == lens.len() {
            break;
        }
        let remaining_groups = groups - g;
        let target = remaining_elems.div_ceil(remaining_groups);
        let mut end = first;
        let mut elems = 0usize;
        while end < lens.len() {
            let with_next = elems + lens[end];
            if elems > 0 && with_next >= target && with_next - target > target - elems {
                break; // stopping short is closer to the target
            }
            elems = with_next;
            end += 1;
            if elems >= target {
                break;
            }
        }
        if remaining_groups == 1 {
            // Last slot: sweep whatever remains.
            while end < lens.len() {
                elems += lens[end];
                end += 1;
            }
        }
        out.push(RangeGroup {
            first,
            count: end - first,
            elem_offset,
            elems,
        });
        first = end;
        elem_offset += elems;
        remaining_elems -= elems;
    }
    out
}

/// Maps `f` over `items` with preserved output order, fanning contiguous
/// ranges out to at most [`max_threads`] pool slots. Runs inline for a single
/// item, a single thread, or when called from inside a fan-out slot.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, || (), move |(), item| f(item))
}

/// Like [`parallel_map`], but each fan-out slot first builds scratch state
/// with `init` and threads it through its contiguous run of items — the way
/// the simulation gives each worker thread one model replica instead of one
/// per task.
pub fn parallel_map_with<S, T, U, FI, F>(items: &[T], init: FI, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let threads = fan_out_width(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let per_slot = items.len().div_ceil(threads);
    let slots = items.len().div_ceil(per_slot);
    let mut partials: Vec<Vec<U>> = (0..slots).map(|_| Vec::new()).collect();
    let out_base = SendPtr(partials.as_mut_ptr());
    fan_out(slots, |slot| {
        let SendPtr(out_base) = { out_base };
        let start = slot * per_slot;
        let chunk = &items[start..(start + per_slot).min(items.len())];
        let mut state = init();
        let produced: Vec<U> = chunk.iter().map(|item| f(&mut state, item)).collect();
        // SAFETY: each slot writes exactly its own element of `partials`,
        // which outlives the fan-out.
        unsafe { *out_base.add(slot) = produced };
    });
    partials.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_all_blocks_once() {
        let mut data = vec![0u32; 103];
        parallel_chunks_mut(&mut data, 10, |first_block, chunk| {
            for (i, row) in chunk.chunks(10).enumerate() {
                assert!(row.len() <= 10);
                let _ = first_block + i;
            }
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn chunk_indices_are_block_aligned() {
        let mut data = vec![0usize; 64];
        parallel_chunks_mut(&mut data, 8, |first_block, chunk| {
            for (i, row) in chunk.chunks_mut(8).enumerate() {
                for v in row.iter_mut() {
                    *v = first_block + i;
                }
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 8);
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert!(parallel_map::<usize, usize, _>(&[], |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x: &usize| x + 1), vec![8]);
    }

    #[test]
    fn map_with_builds_one_state_per_thread() {
        let builds = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_with(
            &items,
            || builds.fetch_add(1, Ordering::SeqCst),
            |_state, &x| x + 1,
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        // One state per fan-out slot (or one total when run inline), never
        // one per item.
        let built = builds.load(Ordering::SeqCst);
        assert!(built <= max_threads().min(items.len()), "built {built}");
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map(&items, |&x| {
            // A nested helper must not re-enter the pool; it still computes.
            let mut inner = vec![0usize; 16];
            parallel_chunks_mut(&mut inner, 4, |first, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = first * 4 + i + x;
                }
            });
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..8).map(|x| (0..16).map(|i| i + x).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn pool_survives_repeated_fan_outs() {
        // The same persistent workers serve many fan-outs back to back; this
        // is the spawn-amortisation the pool exists for.
        for round in 0..200usize {
            let items: Vec<usize> = (0..17).collect();
            let out = parallel_map(&items, |&x| x + round);
            assert_eq!(out, (round..17 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_recovers() {
        let boom = std::panic::catch_unwind(|| {
            let items: Vec<usize> = (0..64).collect();
            parallel_map(&items, |&x| {
                assert!(x < 60, "task {x} exploded");
                x
            });
        });
        // With >=2 threads the panic comes from a pool worker; with one it is
        // the inline path. Either way it must reach the caller...
        assert!(boom.is_err());
        // ...and the pool must keep serving jobs afterwards.
        let items: Vec<usize> = (0..32).collect();
        assert_eq!(
            parallel_map(&items, |&x| x * 3),
            (0..32).map(|x| x * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn slot0_panic_does_not_leak_suppression() {
        // Slot 0 runs on the calling thread; its panic unwinds through
        // `run_as_worker`, which must restore the nesting flag or every
        // later fan-out on this thread would silently run inline.
        let items: Vec<usize> = (0..64).collect();
        let boom = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                assert!(x != 0, "slot 0 task exploded");
                x
            })
        });
        assert!(boom.is_err());
        assert!(
            !in_parallel_region(),
            "suppression flag leaked after slot-0 panic"
        );
        assert_eq!(
            parallel_map(&items, |&x| x + 1),
            (1..=64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uneven_zip_pairs_each_range_with_its_state() {
        let mut states = vec![0usize; 4];
        let mut data = vec![1u32; 10];
        let lens = [3, 0, 5, 2];
        parallel_uneven_zip_mut(&mut states, &mut data, &lens, |i, state, chunk| {
            assert_eq!(chunk.len(), lens[i]);
            *state = chunk.len();
            for v in chunk.iter_mut() {
                *v += i as u32;
            }
        });
        assert_eq!(states, lens);
        assert_eq!(data, [1, 1, 1, 3, 3, 3, 3, 3, 4, 4]);
    }

    #[test]
    fn uneven_zip_matches_serial_reference() {
        let lens: Vec<usize> = (0..23).map(|i| (i * 7) % 11).collect();
        let total: usize = lens.iter().sum();
        let mut data: Vec<f32> = (0..total).map(|i| i as f32).collect();
        let mut reference = data.clone();
        let mut states = vec![0.0f32; lens.len()];
        parallel_uneven_zip_mut(&mut states, &mut data, &lens, |i, state, chunk| {
            for v in chunk.iter_mut() {
                *v = v.mul_add(1.5, i as f32);
            }
            *state = chunk.iter().sum();
        });
        let mut offset = 0;
        let mut ref_states = vec![0.0f32; lens.len()];
        for (i, &len) in lens.iter().enumerate() {
            let chunk = &mut reference[offset..offset + len];
            for v in chunk.iter_mut() {
                *v = v.mul_add(1.5, i as f32);
            }
            ref_states[i] = chunk.iter().sum();
            offset += len;
        }
        assert_eq!(data, reference);
        assert_eq!(states, ref_states);
    }

    #[test]
    fn uneven_zip_bitwise_identical_on_skewed_sizes() {
        // ROADMAP regression: one oversized shard among tiny ones. The
        // element-balanced grouping must not change the numerics relative to
        // the serial loop, whatever the skew.
        let mut lens = vec![100_000usize];
        lens.extend(std::iter::repeat_n(37usize, 23));
        let total: usize = lens.iter().sum();
        let mut data: Vec<f32> = (0..total).map(|i| (i as f32 * 0.001).sin()).collect();
        let mut reference = data.clone();
        let mut states = vec![0.0f32; lens.len()];
        parallel_uneven_zip_mut(&mut states, &mut data, &lens, |i, state, chunk| {
            for v in chunk.iter_mut() {
                *v = v.mul_add(1.000_1, (i % 3) as f32 * 1e-3);
            }
            *state = chunk.iter().fold(0.0, |acc, &v| acc + v);
        });
        let mut offset = 0;
        let mut ref_states = vec![0.0f32; lens.len()];
        for (i, &len) in lens.iter().enumerate() {
            let chunk = &mut reference[offset..offset + len];
            for v in chunk.iter_mut() {
                *v = v.mul_add(1.000_1, (i % 3) as f32 * 1e-3);
            }
            ref_states[i] = chunk.iter().fold(0.0, |acc, &v| acc + v);
            offset += len;
        }
        assert_eq!(data, reference);
        assert_eq!(states, ref_states);
    }

    #[test]
    fn grouping_balances_by_elements_not_count() {
        // One huge range plus many small ones: by-count grouping would glue
        // the huge range to a third of the small ones; by-element grouping
        // gives it a slot of its own.
        let mut lens = vec![90_000usize];
        lens.extend(std::iter::repeat_n(1_000usize, 30));
        let groups = group_by_elements(&lens, 4);
        assert!(groups.len() <= 4);
        assert_eq!(groups[0].count, 1, "huge range should sit alone");
        assert_eq!(groups[0].elems, 90_000);
        // The small ranges spread over the remaining slots near-evenly.
        for g in &groups[1..] {
            assert!(g.elems <= 12_000, "unbalanced group: {g:?}");
        }
        check_grouping_invariants(&lens, &groups);
    }

    #[test]
    fn grouping_covers_everything_exactly_once() {
        for (lens, groups) in [
            (vec![0usize, 0, 0], 2),
            (vec![5], 4),
            ((0..23).map(|i| (i * 7) % 11).collect::<Vec<_>>(), 7),
            (vec![1, 1, 1, 100], 2),
            (vec![49, 49, 49, 3], 3),
            (vec![], 3),
        ] {
            let out = group_by_elements(&lens, groups);
            assert!(out.len() <= groups);
            check_grouping_invariants(&lens, &out);
        }
    }

    fn check_grouping_invariants(lens: &[usize], groups: &[RangeGroup]) {
        let mut next_range = 0;
        let mut next_elem = 0;
        for g in groups {
            assert_eq!(g.first, next_range, "ranges must be contiguous");
            assert_eq!(g.elem_offset, next_elem, "data must be contiguous");
            let elems: usize = lens[g.first..g.first + g.count].iter().sum();
            assert_eq!(elems, g.elems);
            next_range += g.count;
            next_elem += g.elems;
        }
        assert_eq!(next_range, lens.len(), "every range assigned");
        assert_eq!(next_elem, lens.iter().sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "cover the data exactly")]
    fn uneven_zip_rejects_mismatched_lengths() {
        let mut states = vec![0usize; 2];
        let mut data = vec![0u8; 5];
        parallel_uneven_zip_mut(&mut states, &mut data, &[2, 2], |_, _, _| {});
    }
}
