//! Figure 8: impact of staleness on learning — AdaSGD vs DynSGD under
//! D1 = N(6,2) and D2 = N(12,4), plus the FedAvg (staleness-unaware) and
//! SSGD (staleness-free) baselines, on non-IID data.

use crate::experiments::common;
use crate::{ExperimentWriter, Scale};
use fleet_core::{AdaSgd, Aggregator, DynSgd, FedAvg, Ssgd};
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution, TrainingHistory};

fn config(scale: Scale, staleness: StalenessDistribution, seed: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .steps(scale.pick(400, 2500))
        .learning_rate(0.03)
        .batch_size(scale.pick(50, 100))
        .aggregation_k(1)
        .staleness(staleness)
        .eval_every(scale.pick(60, 100))
        .eval_examples(800)
        .seed(seed)
        .build()
        .expect("fig08 config is valid")
}

fn run_one<A: Aggregator>(
    world: &common::World,
    scale: Scale,
    staleness: StalenessDistribution,
    aggregator: A,
) -> TrainingHistory {
    let sim = AsyncSimulation::new(
        &world.train,
        &world.test,
        &world.users,
        config(scale, staleness, 5),
    );
    let mut model = common::model(world.train.num_classes(), 1);
    sim.run(&mut model, aggregator)
}

/// Runs the Fig. 8 comparison and writes accuracy-vs-step series.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig08_staleness_impact");
    out.comment("Figure 8: accuracy vs steps on non-IID data under controlled staleness");
    let world = common::mnist_non_iid(scale.pick(2000, 6000), 100, 42);

    let runs: Vec<(String, TrainingHistory)> = vec![
        (
            "SSGD (ideal)".to_string(),
            run_one(&world, scale, StalenessDistribution::None, Ssgd::new()),
        ),
        (
            "AdaSGD (mu=6)".to_string(),
            run_one(
                &world,
                scale,
                StalenessDistribution::d1(),
                AdaSgd::new(10, 99.7),
            ),
        ),
        (
            "DynSGD (mu=6)".to_string(),
            run_one(&world, scale, StalenessDistribution::d1(), DynSgd::new()),
        ),
        (
            "AdaSGD (mu=12)".to_string(),
            run_one(
                &world,
                scale,
                StalenessDistribution::d2(),
                AdaSgd::new(10, 99.7),
            ),
        ),
        (
            "DynSGD (mu=12)".to_string(),
            run_one(&world, scale, StalenessDistribution::d2(), DynSgd::new()),
        ),
        (
            "FedAvg (mu=12)".to_string(),
            run_one(&world, scale, StalenessDistribution::d2(), FedAvg::new()),
        ),
    ];

    out.row("algorithm,step,accuracy");
    for (name, history) in &runs {
        for e in &history.evals {
            out.row(format!("{name},{},{:.4}", e.step, e.accuracy));
        }
    }
    // Convergence-speed summary (the paper reports AdaSGD reaching 80% 14.4%
    // faster than DynSGD under D1 and 18.4% faster under D2).
    let target = runs
        .iter()
        .map(|(_, h)| h.best_accuracy())
        .fold(f32::INFINITY, f32::min)
        .max(0.5)
        * 0.95;
    for (name, history) in &runs {
        let steps = history
            .steps_to_accuracy(target)
            .map(|s| s.to_string())
            .unwrap_or_else(|| "never".to_string());
        out.comment(format!(
            "{name}: final={:.4} best={:.4} steps_to_{target:.2}={steps}",
            history.final_accuracy(),
            history.best_accuracy()
        ));
    }
    out.finish();
}
