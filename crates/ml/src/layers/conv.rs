//! 2-D convolution layer.
//!
//! Implements the convolutional blocks of the paper's Table 1 models with a
//! straightforward (non-im2col) loop nest: the mini-batches used by FLeet
//! workers are small, so clarity wins over raw throughput here.

use crate::init::Initializer;
use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// A 2-D convolution over `[batch, in_channels, height, width]` inputs with
/// stride support and no padding ("valid" convolution), as in the paper's
/// Table 1 topologies.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights with shape `[out_channels, in_channels, kernel, kernel]`.
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        init: Initializer,
        seed: u64,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weights = init.init(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
            seed,
        );
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            weights,
            bias: Tensor::zeros(&[out_channels]),
            grad_weights: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_input: None,
        }
    }

    /// Output spatial size for an input spatial size, or `None` if the input
    /// is smaller than the kernel.
    pub fn output_size(&self, input: usize) -> Option<usize> {
        if input < self.kernel {
            None
        } else {
            Some((input - self.kernel) / self.stride + 1)
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(MlError::ShapeMismatch {
                expected: vec![0, self.in_channels, 0, 0],
                actual: shape.to_vec(),
                context: "Conv2d::forward".to_string(),
            });
        }
        let (h, w) = (shape[2], shape[3]);
        let oh = self.output_size(h).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input height {h} smaller than kernel {}",
                self.kernel
            ))
        })?;
        let ow = self.output_size(w).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input width {w} smaller than kernel {}",
                self.kernel
            ))
        })?;
        Ok((shape[0], oh, ow))
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (batch, oh, ow) = self.check_input(input)?;
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let (in_c, out_c, kernel, stride) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
        );
        let mut out = vec![0.0f32; batch * out_c * oh * ow];
        let in_data = input.data();
        let w_data = self.weights.data();
        for b in 0..batch {
            for oc in 0..out_c {
                let bias = self.bias.data()[oc];
                for oy in 0..oh {
                    let out_row = &mut out[((b * out_c + oc) * oh + oy) * ow..][..ow];
                    out_row.fill(bias);
                    // Accumulate one (ic, ky, kx) weight at a time across the
                    // whole output row — for stride 1 that is a contiguous
                    // axpy over the input row, which vectorises over `ox`
                    // (the long dimension) instead of the tiny kernel width.
                    // The (ic, ky, kx)-ascending order matches the seed
                    // kernel's per-element summation order exactly.
                    for ic in 0..in_c {
                        for ky in 0..kernel {
                            let iy = oy * stride + ky;
                            let in_row = &in_data[((b * in_c + ic) * h + iy) * w..][..w];
                            let w_row =
                                &w_data[((oc * in_c + ic) * kernel + ky) * kernel..][..kernel];
                            for (kx, &wv) in w_row.iter().enumerate() {
                                if stride == 1 {
                                    for (o, &x) in out_row.iter_mut().zip(&in_row[kx..kx + ow]) {
                                        *o += wv * x;
                                    }
                                } else {
                                    for (ox, o) in out_row.iter_mut().enumerate() {
                                        *o += wv * in_row[ox * stride + kx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        match &mut self.cached_input {
            Some(cache) => cache.copy_from(input),
            cache => *cache = Some(input.clone()),
        }
        Ok(Tensor::from_vec(out, &[batch, out_c, oh, ow]))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (batch, oh, ow) = {
            let input = self.cached_input.as_ref().ok_or_else(|| {
                MlError::InvalidArgument("Conv2d::backward called before forward".to_string())
            })?;
            self.check_input(input)?
        };
        let expected = vec![batch, self.out_channels, oh, ow];
        if grad_output.shape() != expected.as_slice() {
            return Err(MlError::ShapeMismatch {
                expected,
                actual: grad_output.shape().to_vec(),
                context: "Conv2d::backward".to_string(),
            });
        }
        let (in_c, out_c, kernel, stride) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
        );
        // Disjoint field borrows: the cached input is read while the gradient
        // buffers are written, so no clone of the input is needed.
        let input = self.cached_input.as_ref().expect("checked above");
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let mut grad_input = vec![0.0f32; input.len()];
        let in_data = input.data();
        let go = grad_output.data();
        let w_data = self.weights.data();
        let gw = self.grad_weights.data_mut();
        let gb = self.grad_bias.data_mut();
        for b in 0..batch {
            for oc in 0..out_c {
                for oy in 0..oh {
                    let go_row = &go[((b * out_c + oc) * oh + oy) * ow..][..ow];
                    for (ox, &g) in go_row.iter().enumerate() {
                        // ReLU upstream makes zero gradients common enough
                        // that this skip pays for itself (unlike the dense
                        // matmul path — see fleet_ml::kernels module docs).
                        if g == 0.0 {
                            continue;
                        }
                        gb[oc] += g;
                        for ic in 0..in_c {
                            for ky in 0..kernel {
                                let iy = oy * stride + ky;
                                let base = ((b * in_c + ic) * h + iy) * w + ox * stride;
                                let in_patch = &in_data[base..base + kernel];
                                let wbase = ((oc * in_c + ic) * kernel + ky) * kernel;
                                let gw_row = &mut gw[wbase..wbase + kernel];
                                let w_row = &w_data[wbase..wbase + kernel];
                                let gi_patch = &mut grad_input[base..base + kernel];
                                for kx in 0..kernel {
                                    gw_row[kx] += g * in_patch[kx];
                                    gi_patch[kx] += g * w_row[kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(grad_input, input.shape()))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn gradients(&self) -> Vec<&Tensor> {
        vec![&self.grad_weights, &self.grad_bias]
    }

    fn zero_gradients(&mut self) {
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_output_shape() {
        let mut conv = Conv2d::new(1, 2, 3, 1, Initializer::Xavier, 0);
        let out = conv.forward(&Tensor::zeros(&[2, 1, 8, 8])).unwrap();
        assert_eq!(out.shape(), &[2, 2, 6, 6]);
    }

    #[test]
    fn forward_with_stride() {
        let mut conv = Conv2d::new(1, 1, 2, 2, Initializer::Xavier, 0);
        let out = conv.forward(&Tensor::zeros(&[1, 1, 6, 6])).unwrap();
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
    }

    #[test]
    fn identity_kernel_extracts_pixels() {
        // A 1x1 kernel with weight 1.0 must reproduce the input.
        let mut conv = Conv2d::new(1, 1, 1, 1, Initializer::Zeros, 0);
        conv.weights = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let input = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_convolution_value() {
        // 2x2 all-ones kernel over a 2x2 input sums the input.
        let mut conv = Conv2d::new(1, 1, 2, 1, Initializer::Zeros, 0);
        conv.weights = Tensor::ones(&[1, 1, 2, 2]);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.data(), &[10.0]);
    }

    #[test]
    fn input_smaller_than_kernel_errors() {
        let mut conv = Conv2d::new(1, 1, 5, 1, Initializer::Xavier, 0);
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn wrong_channel_count_errors() {
        let mut conv = Conv2d::new(3, 1, 2, 1, Initializer::Xavier, 0);
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut conv = Conv2d::new(1, 1, 2, 1, Initializer::Xavier, 5);
        let input = Tensor::from_vec(
            vec![0.2, -0.5, 0.1, 0.7, 0.3, -0.2, 0.9, 0.4, -0.6],
            &[1, 1, 3, 3],
        );
        let eps = 1e-2f32;
        conv.zero_gradients();
        let out = conv.forward(&input).unwrap();
        conv.backward(&Tensor::ones(out.shape())).unwrap();
        let analytic = conv.gradients()[0].data()[0];

        let original = conv.weights.data()[0];
        conv.weights.data_mut()[0] = original + eps;
        let plus = conv.forward(&input).unwrap().sum();
        conv.weights.data_mut()[0] = original - eps;
        let minus = conv.forward(&input).unwrap().sum();
        conv.weights.data_mut()[0] = original;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn backward_shapes_grad_input_like_input() {
        let mut conv = Conv2d::new(2, 3, 2, 1, Initializer::Xavier, 1);
        let input = Tensor::zeros(&[2, 2, 5, 5]);
        let out = conv.forward(&input).unwrap();
        let grad_in = conv.backward(&Tensor::ones(out.shape())).unwrap();
        assert_eq!(grad_in.shape(), input.shape());
    }

    #[test]
    fn parameter_count_matches_formula() {
        let conv = Conv2d::new(3, 16, 3, 1, Initializer::Xavier, 0);
        assert_eq!(conv.parameter_count(), 16 * 3 * 3 * 3 + 16);
    }
}
