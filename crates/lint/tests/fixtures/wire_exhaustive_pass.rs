// Fixture: a symmetric codec — every field of `Frame` appears in both the
// encode and decode paths, and put_/get_ helpers pair up. Expect zero
// findings.

pub struct Frame {
    pub version: u32,
    pub payload: Vec<u8>,
}

pub fn encode_frame(f: &Frame, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&f.version.to_le_bytes());
    put_bytes(buf, &f.payload);
}

pub fn decode_frame(buf: &[u8]) -> Result<Frame, String> {
    let version = u32::from_le_bytes(buf[0..4].try_into().map_err(|_| "short")?);
    let payload = get_bytes(&buf[4..])?;
    Ok(Frame { version, payload })
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    buf.extend_from_slice(bytes);
}

fn get_bytes(buf: &[u8]) -> Result<Vec<u8>, String> {
    let len = u64::from_le_bytes(buf[0..8].try_into().map_err(|_| "short")?) as usize;
    Ok(buf[8..8 + len].to_vec())
}
