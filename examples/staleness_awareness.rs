//! Staleness awareness: AdaSGD vs DynSGD vs FedAvg vs the synchronous ideal
//! under controlled staleness (the Fig. 8 setting, at example scale).
//!
//! Run with: `cargo run --release -p fleet-examples --example staleness_awareness`

use fleet_core::{AdaSgd, Aggregator, DynSgd, FedAvg, Ssgd};
use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_ml::models::mlp_classifier;
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution};

fn main() {
    let data = generate(&SyntheticSpec::vector(10, 32, 4000), 3);
    let (train, test) = data.split(0.2);
    let users = non_iid_shards(&train, 50, 2, 4);

    let config = SimulationConfig::builder()
        .steps(800)
        .learning_rate(0.03)
        .batch_size(50)
        .staleness(StalenessDistribution::Gaussian {
            mean: 12.0,
            std: 4.0,
        })
        .eval_every(100)
        .eval_examples(600)
        .seed(5)
        .build()
        .expect("simulation config is valid");
    println!(
        "Non-IID data over {} users, staleness ~ N(12, 4), {} steps\n",
        users.len(),
        config.steps
    );

    let mut results = Vec::new();
    run(
        &train,
        &test,
        &users,
        &config,
        AdaSgd::new(10, 99.7),
        &mut results,
    );
    run(&train, &test, &users, &config, DynSgd::new(), &mut results);
    run(&train, &test, &users, &config, FedAvg::new(), &mut results);
    let mut sync_config = config.clone();
    sync_config.staleness = StalenessDistribution::None;
    run(
        &train,
        &test,
        &users,
        &sync_config,
        Ssgd::new(),
        &mut results,
    );

    println!("\nalgorithm | final accuracy | best accuracy");
    for (name, final_acc, best) in results {
        println!("{name:9} |     {final_acc:.3}      |    {best:.3}");
    }
}

fn run<A: Aggregator>(
    train: &fleet_data::Dataset,
    test: &fleet_data::Dataset,
    users: &[Vec<usize>],
    config: &SimulationConfig,
    aggregator: A,
    results: &mut Vec<(&'static str, f32, f32)>,
) {
    let name = aggregator.name();
    let partition: Vec<Vec<usize>> = users.to_vec();
    let sim = AsyncSimulation::new(train, test, &partition, config.clone());
    let mut model = mlp_classifier(32, &[32], 10, 9);
    let history = sim.run(&mut model, aggregator);
    print!("{name}: ");
    for eval in &history.evals {
        print!("{:.2}@{} ", eval.accuracy, eval.step);
    }
    println!();
    results.push((name, history.final_accuracy(), history.best_accuracy()));
}
