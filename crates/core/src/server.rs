//! The asynchronous parameter server applying weighted worker gradients
//! (Eq. 3 of the paper), sharded for fan-out aggregation.
//!
//! # Shard layout
//!
//! The global model is one flat `Vec<f32>`, range-partitioned into
//! `num_shards` contiguous segments of near-equal length (the first
//! `len % num_shards` shards hold one extra element). Each shard owns a
//! pending buffer of scaled gradient segments and its own logical clock; the
//! server keeps the *global* logical clock that staleness `τ = t − t_i` is
//! measured against, so the staleness semantics (and the Λ(τ) dampening of
//! Fig. 8) are independent of the shard count. Today every shard applies its
//! pending run on the same K-th submission, so the per-shard clocks advance
//! in lockstep with the global one; they exist so a future per-shard
//! scheduler can advance shards independently.
//!
//! # Determinism contract
//!
//! [`ParameterServer::submit`] splits each incoming gradient by shard range,
//! scales every element exactly once, and — on the K-th gradient — applies
//! each shard's pending buffer *in submission order*, element by element.
//! Shards are disjoint ranges processed via
//! [`fleet_parallel::parallel_uneven_zip_mut`], which assigns every range to
//! exactly one thread, so the per-element sequence of floating-point
//! operations is identical to the serial single-shard loop. Model parameters
//! are therefore **bit-for-bit identical for any shard count and any thread
//! count** (the workspace digest tests sweep {1, 2, 8} shards; run them under
//! `FLEET_NUM_THREADS=1/4/7` to sweep threads).

use crate::aggregator::Aggregator;
use crate::update::WorkerUpdate;
use std::ops::Range;

/// Minimum per-shard segment length before `submit` fans out across threads:
/// below this the scale/apply work per shard is cheaper than spawning, so the
/// shards run inline (in the same order, producing the same bits).
const FAN_OUT_MIN_SHARD_LEN: usize = 32 * 1024;

/// Result of submitting one worker update to the [`ParameterServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitOutcome {
    /// The weight `min(1, Λ(τ)·1/sim)` that was attached to the gradient, as
    /// the aggregator computed it in f64.
    pub scaling_factor: f64,
    /// The f32 weight actually multiplied into the gradient: the f64
    /// `scaling_factor` cast to f32 and clamped at `f32::MIN_POSITIVE`, so
    /// the dampening floor survives the cast (an unclamped cast underflows to
    /// an exact 0.0 around staleness 10⁴, nullifying the gradient — precisely
    /// what the floor exists to prevent).
    pub applied_weight: f32,
    /// Whether this submission triggered a model update (the K-th gradient of
    /// the current aggregation round).
    pub applied: bool,
    /// The server's global logical clock after the submission.
    pub clock: u64,
}

/// One range-partitioned shard: a contiguous segment of the flat parameter
/// vector, its pending buffer of scaled gradient segments, and its own
/// logical clock.
#[derive(Debug)]
struct Shard {
    /// First parameter index of the shard's range.
    start: usize,
    /// Number of parameters in the shard's range.
    len: usize,
    /// Scaled gradient segments awaiting the K-th submission, in submission
    /// order.
    pending: Vec<Vec<f32>>,
    /// Number of model updates this shard has applied.
    clock: u64,
}

/// A parameter server holding the flat model parameters — range-partitioned
/// into shards — a global logical clock and an aggregation buffer of `K`
/// gradients per update (§2.3: `K` can be 1 for maximum update frequency, or
/// larger / time-window based). [`ParameterServer::new`] starts with a single
/// shard; [`ParameterServer::with_shards`] re-partitions so the aggregation
/// hot path fans out across cores. See the module docs for the layout and the
/// determinism contract.
#[derive(Debug)]
pub struct ParameterServer<A: Aggregator> {
    parameters: Vec<f32>,
    shards: Vec<Shard>,
    /// Cached shard lengths, in shard order (the fan-out helper needs them
    /// alongside the mutably borrowed shards).
    shard_lens: Vec<usize>,
    aggregator: A,
    learning_rate: f32,
    aggregation_k: usize,
    pending_count: usize,
    clock: u64,
    updates_applied: u64,
    updates_received: u64,
}

impl<A: Aggregator> ParameterServer<A> {
    /// Creates a server over an initial flat parameter vector, with a single
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive or `aggregation_k` is zero.
    pub fn new(
        initial_parameters: Vec<f32>,
        aggregator: A,
        learning_rate: f32,
        aggregation_k: usize,
    ) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(
            aggregation_k > 0,
            "aggregation parameter K must be positive"
        );
        let mut server = Self {
            parameters: initial_parameters,
            shards: Vec::new(),
            shard_lens: Vec::new(),
            aggregator,
            learning_rate,
            aggregation_k,
            pending_count: 0,
            clock: 0,
            updates_applied: 0,
            updates_received: 0,
        };
        server.partition(1);
        server
    }

    /// Re-partitions the parameters into `num_shards` near-equal contiguous
    /// ranges. Shard counts above the parameter length leave the excess
    /// shards empty (harmless no-ops). The partition does not affect results:
    /// outputs are bit-for-bit identical for every shard count.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or gradients are pending (re-partition
    /// before submitting, not mid-round).
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        assert!(num_shards > 0, "shard count must be positive");
        assert_eq!(
            self.pending_count, 0,
            "cannot re-partition with pending gradients"
        );
        self.partition(num_shards);
        self
    }

    fn partition(&mut self, num_shards: usize) {
        let len = self.parameters.len();
        let base = len / num_shards;
        let extra = len % num_shards;
        let clock = self.clock;
        self.shards.clear();
        self.shard_lens.clear();
        let mut start = 0;
        for i in 0..num_shards {
            let shard_len = base + usize::from(i < extra);
            self.shards.push(Shard {
                start,
                len: shard_len,
                pending: Vec::new(),
                clock,
            });
            self.shard_lens.push(shard_len);
            start += shard_len;
        }
    }

    /// The current flat model parameters (what a worker pulls in step 4 of
    /// Fig. 2). Contiguous regardless of the shard count.
    pub fn parameters(&self) -> &[f32] {
        &self.parameters
    }

    /// The server's global logical clock `t`: the number of model updates so
    /// far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of shards the parameters are partitioned into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The contiguous parameter range owned by each shard, in shard order.
    pub fn shard_ranges(&self) -> Vec<Range<usize>> {
        self.shards
            .iter()
            .map(|s| s.start..s.start + s.len)
            .collect()
    }

    /// The logical clock of one shard (today always equal to [`Self::clock`],
    /// since every shard applies on the same K-th submission).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_clock(&self, shard: usize) -> u64 {
        self.shards[shard].clock
    }

    /// Number of gradients received (applied or pending).
    pub fn updates_received(&self) -> u64 {
        self.updates_received
    }

    /// Number of gradients that have been folded into the model.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// The configured learning rate γ.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Access to the aggregator (e.g. to inspect `τ_thres`).
    pub fn aggregator(&self) -> &A {
        &self.aggregator
    }

    /// Submits one worker update. The gradient is split by shard range,
    /// scaled once by the aggregator's weight and buffered per shard; once
    /// `K` gradients have accumulated every shard applies its pending run (in
    /// submission order) and the global clock advances. With more than one
    /// shard — and segments long enough to beat the spawn cost — the split,
    /// scale and apply all fan out across threads via [`fleet_parallel`]; see
    /// the module docs for why the result is bit-for-bit independent of both
    /// shard and thread count.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the parameter length.
    pub fn submit(&mut self, update: WorkerUpdate) -> SubmitOutcome {
        assert_eq!(
            update.gradient.len(),
            self.parameters.len(),
            "gradient length {} does not match parameter length {}",
            update.gradient.len(),
            self.parameters.len()
        );
        let scaling = self.aggregator.scaling_factor(&update);
        self.aggregator.record(&update);
        self.updates_received += 1;

        // `DampeningPolicy::factor` floors the f64 weight at
        // `f64::MIN_POSITIVE`, but the floor dies in the f32 cast (anything
        // below f32's subnormal range becomes an exact 0.0). Clamp again
        // after the cast so extreme staleness keeps a nonzero weight.
        let weight = (scaling as f32).max(f32::MIN_POSITIVE);

        self.pending_count += 1;
        let apply_now = self.pending_count >= self.aggregation_k;
        let learning_rate = self.learning_rate;
        let gradient = update.gradient.as_slice();
        let body = |_: usize, shard: &mut Shard, segment: &mut [f32]| {
            let incoming = &gradient[shard.start..shard.start + shard.len];
            if apply_now {
                // Drain the shard's pending run in submission order, then
                // fold the incoming gradient in directly: per element the op
                // sequence (scale, then scaled-subtract) is identical to
                // buffering it first, without allocating a segment that would
                // be freed immediately (on the default K = 1 hot path nothing
                // is ever buffered).
                for scaled in &shard.pending {
                    for (p, g) in segment.iter_mut().zip(scaled) {
                        *p -= learning_rate * g;
                    }
                }
                shard.pending.clear();
                for (p, g) in segment.iter_mut().zip(incoming) {
                    *p -= learning_rate * (g * weight);
                }
                shard.clock += 1;
            } else {
                shard
                    .pending
                    .push(incoming.iter().map(|g| g * weight).collect());
            }
        };
        // Fan out only when each shard carries enough elements to beat the
        // per-submit thread-spawn cost; below that, the same body runs inline
        // in shard order (identical op order either way, so this is purely a
        // latency decision).
        let fan_out = self.shards.len() > 1
            && self.parameters.len() / self.shards.len() >= FAN_OUT_MIN_SHARD_LEN;
        if fan_out {
            fleet_parallel::parallel_uneven_zip_mut(
                &mut self.shards,
                &mut self.parameters,
                &self.shard_lens,
                body,
            );
        } else {
            let mut rest = self.parameters.as_mut_slice();
            for (i, shard) in self.shards.iter_mut().enumerate() {
                let (segment, tail) = rest.split_at_mut(shard.len);
                rest = tail;
                body(i, shard, segment);
            }
        }
        if apply_now {
            self.updates_applied += self.pending_count as u64;
            self.pending_count = 0;
            self.clock += 1;
        }
        SubmitOutcome {
            scaling_factor: scaling,
            applied_weight: weight,
            applied: apply_now,
            clock: self.clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{AdaSgd, DynSgd, FedAvg};
    use fleet_data::LabelDistribution;
    use fleet_ml::Gradient;
    use proptest::prelude::*;

    fn update(gradient: Vec<f32>, staleness: u64) -> WorkerUpdate {
        WorkerUpdate::new(
            Gradient::from_vec(gradient),
            staleness,
            LabelDistribution::uniform(4),
            10,
            0,
        )
    }

    #[test]
    fn k1_applies_immediately() {
        let mut server = ParameterServer::new(vec![1.0, 1.0], FedAvg::new(), 0.5, 1);
        let outcome = server.submit(update(vec![1.0, -1.0], 0));
        assert!(outcome.applied);
        assert_eq!(outcome.clock, 1);
        assert_eq!(server.parameters(), &[0.5, 1.5]);
    }

    #[test]
    fn k3_buffers_until_full() {
        let mut server = ParameterServer::new(vec![0.0], FedAvg::new(), 1.0, 3);
        assert!(!server.submit(update(vec![1.0], 0)).applied);
        assert!(!server.submit(update(vec![1.0], 0)).applied);
        assert_eq!(server.clock(), 0);
        assert_eq!(server.parameters(), &[0.0]);
        let third = server.submit(update(vec![1.0], 0));
        assert!(third.applied);
        assert_eq!(server.clock(), 1);
        assert_eq!(server.parameters(), &[-3.0]);
        assert_eq!(server.updates_applied(), 3);
        assert_eq!(server.updates_received(), 3);
    }

    #[test]
    fn stale_gradients_are_dampened_by_dynsgd() {
        let mut server = ParameterServer::new(vec![0.0], DynSgd::new(), 1.0, 1);
        server.submit(update(vec![1.0], 9)); // weight 0.1
        assert!((server.parameters()[0] + 0.1).abs() < 1e-6);
    }

    #[test]
    fn adasgd_server_end_to_end() {
        let mut server = ParameterServer::new(vec![0.0, 0.0], AdaSgd::new(4, 99.7), 0.1, 1);
        for i in 0..50 {
            let outcome = server.submit(update(vec![0.5, -0.5], i % 5));
            assert!(outcome.applied);
            assert!(outcome.scaling_factor > 0.0 && outcome.scaling_factor <= 1.0);
        }
        assert_eq!(server.clock(), 50);
        // The parameters moved in the gradient-descent direction.
        assert!(server.parameters()[0] < 0.0);
        assert!(server.parameters()[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match parameter length")]
    fn mismatched_gradient_length_panics() {
        let mut server = ParameterServer::new(vec![0.0, 0.0], FedAvg::new(), 0.1, 1);
        server.submit(update(vec![1.0], 0));
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_learning_rate_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "aggregation parameter K must be positive")]
    fn zero_k_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.1, 1).with_shards(0);
    }

    #[test]
    fn shard_ranges_partition_the_parameters() {
        for (len, shards) in [(10, 3), (7, 7), (5, 8), (1, 1), (64, 4)] {
            let server =
                ParameterServer::new(vec![0.0; len], FedAvg::new(), 0.1, 1).with_shards(shards);
            assert_eq!(server.num_shards(), shards);
            let ranges = server.shard_ranges();
            let mut next = 0;
            for range in &ranges {
                assert_eq!(range.start, next, "ranges must be contiguous");
                next = range.end;
            }
            assert_eq!(next, len, "ranges must cover every parameter");
            // Near-equal: lengths differ by at most one.
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let min = lens.iter().min().unwrap();
            let max = lens.iter().max().unwrap();
            assert!(max - min <= 1, "lens {lens:?}");
        }
    }

    #[test]
    fn shard_clocks_advance_in_lockstep_with_global_clock() {
        let mut server = ParameterServer::new(vec![0.0; 10], FedAvg::new(), 0.1, 2).with_shards(4);
        for i in 0..6 {
            server.submit(update(vec![0.1; 10], i));
        }
        assert_eq!(server.clock(), 3);
        for shard in 0..server.num_shards() {
            assert_eq!(server.shard_clock(shard), 3);
        }
    }

    /// The acceptance criterion in miniature: identical submission sequences
    /// produce bit-for-bit identical parameters at every shard count.
    #[test]
    fn sharded_submit_matches_single_shard_reference() {
        let len = 37;
        let make = |shards: usize| {
            ParameterServer::new(
                (0..len).map(|i| (i as f32 * 0.37).sin()).collect(),
                DynSgd::new(),
                0.05,
                3,
            )
            .with_shards(shards)
        };
        for shards in [2, 8, 64] {
            let mut reference = make(1);
            let mut sharded = make(shards);
            for step in 0..12u64 {
                let gradient: Vec<f32> = (0..len)
                    .map(|i| ((i as f32 + step as f32) * 0.91).cos())
                    .collect();
                let a = reference.submit(update(gradient.clone(), step % 5));
                let b = sharded.submit(update(gradient, step % 5));
                assert_eq!(a, b);
                assert_eq!(
                    reference.parameters(),
                    sharded.parameters(),
                    "shards={shards} step={step}"
                );
            }
            assert_eq!(reference.clock(), sharded.clock());
            assert_eq!(reference.updates_applied(), sharded.updates_applied());
        }
    }

    /// Regression test for the dampening-floor underflow: at staleness
    /// ≈ 10_000 the exponential Λ(τ) underflows f64 (floored at
    /// `f64::MIN_POSITIVE` by `DampeningPolicy::factor`), and the old
    /// `scaled(scaling as f32)` cast turned that floor into an exact 0.0
    /// weight — nullifying the gradient the floor was meant to preserve.
    #[test]
    fn dampening_floor_survives_the_f32_cast() {
        let aggregator = AdaSgd::new(4, 99.7).with_fixed_tau_thres(12);
        let mut server = ParameterServer::new(vec![0.0, 0.0], aggregator, 1.0, 1);
        let outcome = server.submit(update(vec![1.0, -1.0], 10_000));
        // The f64 floor held, but an unclamped f32 cast of it is exactly 0.
        assert!(outcome.scaling_factor > 0.0);
        assert_eq!(outcome.scaling_factor as f32, 0.0);
        // The clamp keeps the applied weight (and the parameter trace) nonzero.
        assert!(outcome.applied_weight > 0.0);
        assert!(
            server.parameters()[0] < 0.0 && server.parameters()[1] > 0.0,
            "an extremely stale gradient must still leave a nonzero trace, got {:?}",
            server.parameters()
        );
    }

    #[test]
    fn fresh_updates_keep_full_weight_after_the_clamp() {
        let mut server = ParameterServer::new(vec![0.0], FedAvg::new(), 1.0, 1);
        let outcome = server.submit(update(vec![1.0], 0));
        assert_eq!(outcome.applied_weight, 1.0);
    }

    proptest! {
        /// Bit-for-bit equivalence of the sharded fan-out against the
        /// single-shard reference, over random models, K, shard counts and
        /// staleness sequences.
        #[test]
        fn prop_sharded_fan_out_is_bitwise_equivalent(
            len in 1usize..80,
            shards in 1usize..12,
            k in 1usize..5,
            seeds in proptest::collection::vec((0u64..50, -2.0f32..2.0), 1..20),
        ) {
            let init: Vec<f32> = (0..len).map(|i| (i as f32 * 0.11).cos()).collect();
            let mut reference = ParameterServer::new(init.clone(), DynSgd::new(), 0.1, k);
            let mut sharded =
                ParameterServer::new(init, DynSgd::new(), 0.1, k).with_shards(shards);
            for &(staleness, scale) in &seeds {
                let gradient: Vec<f32> =
                    (0..len).map(|i| scale * ((i as f32) * 0.7).sin()).collect();
                let a = reference.submit(update(gradient.clone(), staleness));
                let b = sharded.submit(update(gradient, staleness));
                prop_assert_eq!(a, b);
                prop_assert_eq!(reference.parameters(), sharded.parameters());
            }
        }
    }
}
