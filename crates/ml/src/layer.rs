//! The [`Layer`] trait implemented by every building block of a
//! [`crate::model::Sequential`] model.

use crate::tensor::Tensor;
use crate::Result;

/// A differentiable layer.
///
/// A layer caches whatever it needs during [`Layer::forward`] so that the
/// following [`Layer::backward`] call can compute both the gradient with
/// respect to its input (returned) and the gradients with respect to its own
/// parameters (accumulated internally and exposed via [`Layer::gradients`]).
///
/// Layers are used exclusively through [`crate::model::Sequential`], but the
/// trait is public so that downstream users can add custom layers.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Human-readable layer name used in model summaries.
    fn name(&self) -> &str;

    /// Runs the forward pass for a batch, caching activations for backward.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MlError::ShapeMismatch`] when the input shape is not
    /// compatible with the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Runs the backward pass, consuming the gradient with respect to the
    /// layer output and returning the gradient with respect to the input.
    /// Parameter gradients are accumulated internally.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MlError::ShapeMismatch`] when `grad_output` does not
    /// match the shape produced by the preceding forward pass, or
    /// [`crate::MlError::InvalidArgument`] when called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// The layer's parameter tensors (possibly empty).
    fn parameters(&self) -> Vec<&Tensor>;

    /// Mutable access to the layer's parameter tensors.
    fn parameters_mut(&mut self) -> Vec<&mut Tensor>;

    /// The gradients accumulated by the latest backward pass, in the same
    /// order as [`Layer::parameters`].
    fn gradients(&self) -> Vec<&Tensor>;

    /// Resets all accumulated parameter gradients to zero.
    fn zero_gradients(&mut self);

    /// Total number of scalar parameters held by the layer.
    fn parameter_count(&self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Boxed deep clone of the layer (parameters, gradients and caches).
    ///
    /// Powers `Clone` for [`crate::model::Sequential`], which the parallel
    /// async simulation uses to hand each worker thread its own model replica.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
