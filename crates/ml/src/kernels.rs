//! Blocked, parallel `f32` matrix kernels — the hot path of every FLeet
//! worker gradient computation.
//!
//! # Design
//!
//! All kernels operate on caller-owned raw slices (no allocation) and come in
//! the three layouts the layers need, so transposes are never materialised:
//!
//! * [`matmul`] — `C = A·B` (`A: [m,k]`, `B: [k,n]`): dense forward.
//! * [`matmul_tn_acc`] — `C += Aᵀ·B` (`A: [k,m]`, `B: [k,n]`): weight
//!   gradients, accumulating directly into the layer's gradient buffer.
//! * [`matmul_nt`] — `C = A·Bᵀ` (`A: [m,k]`, `B: [n,k]`): input gradients.
//!
//! The NN/TN kernels run an `MR × NR` register-tiled micro-kernel (partial
//! sums held in registers, `B` panels L1-resident, remainders falling back to
//! row-axpy loops); the NT kernel is a 16-lane blocked dot product with a
//! fixed reduction tree. Work is split across threads by contiguous output
//! rows via [`fleet_parallel::parallel_chunks_mut`], and every output element
//! accumulates over the depth dimension in ascending order regardless of how
//! tiles or threads partition the output — so results are bit-for-bit
//! identical on 1 or N cores and on any SIMD width (the workspace builds with
//! `target-cpu=native`; vectorising these element-wise lane loops never
//! reassociates, and rustc performs no FMA contraction). Keep that property:
//! the simulation's reproducibility tests depend on it.
//!
//! # The seed kernel's sparsity branch
//!
//! The original kernel skipped inner-loop work when `a == 0.0`. That branch
//! pays off only for one-hot-ish inputs (e.g. the recommender's bag-of-words
//! rows) and costs a compare per `(i,p)` pair plus vectorisation-hostile
//! control flow on the dense matrices that dominate this workload, so the
//! dense path no longer has it. [`matmul_naive`] preserves the seed kernel
//! verbatim for benchmarking (`cargo bench --bench ml_kernels` reports both on
//! dense and one-hot inputs) and as the reference implementation the property
//! tests compare against.

/// Output rows per register tile.
const MR: usize = 4;

/// Output columns per register tile: `MR × NR` partial sums live in
/// registers, cutting the traffic to `out` by `MR·NR` and reusing every
/// loaded `B` lane `MR` times. A `k × NR` column panel of `B` is ~`4k·NR`
/// bytes (16 KiB at `k = 256`), so panels stay L1-resident across row groups.
const NR: usize = 16;

/// Below this many fused multiply-adds (~50 µs of work) the scoped-thread
/// fan-out costs more than the arithmetic; kernels stay on the calling
/// thread. Fan-out is also suppressed automatically inside `fleet_parallel`
/// workers, so the simulation's per-task gradients never nest thread pools.
const PAR_FLOP_THRESHOLD: usize = 1 << 19;

#[inline]
fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    for (y, &x) in y.iter_mut().zip(x) {
        *y += a * x;
    }
}

/// Dot product with sixteen independent accumulator lanes combined in a
/// fixed tree order — vectorisable without floating-point reassociation,
/// therefore deterministic on every ISA and thread count.
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    const L: usize = 16;
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f32; L];
    let chunks = x.len() / L;
    for c in 0..chunks {
        let xs: &[f32; L] = x[c * L..c * L + L].try_into().unwrap();
        let ys: &[f32; L] = y[c * L..c * L + L].try_into().unwrap();
        for l in 0..L {
            lanes[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * L..x.len() {
        tail += x[i] * y[i];
    }
    let mut acc = lanes;
    // Fixed pairwise reduction tree: 16 -> 8 -> 4 -> 2 -> 1.
    let mut width = L / 2;
    while width > 0 {
        for l in 0..width {
            acc[l] += acc[l + width];
        }
        width /= 2;
    }
    acc[0] + tail
}

#[inline]
fn check(name: &str, a: usize, b: usize, out: usize, m: usize, k: usize, n: usize) {
    assert_eq!(a, m * k, "{name}: lhs has {a} elements, expected {m}x{k}");
    assert_eq!(b, k * n, "{name}: rhs has {b} elements, expected {k}x{n}");
    assert_eq!(
        out,
        m * n,
        "{name}: out has {out} elements, expected {m}x{n}"
    );
}

/// `out = a · b` with `a: [m,k]`, `b: [k,n]`, `out: [m,n]`, all row-major.
///
/// Cache-blocked and parallel over output rows; `out` is fully overwritten.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check("matmul", a.len(), b.len(), out.len(), m, k, n);
    if m * k * n < PAR_FLOP_THRESHOLD {
        matmul_rows(a, b, out, 0, k, n);
        return;
    }
    fleet_parallel::parallel_chunks_mut(out, n, |first_row, chunk| {
        matmul_rows(a, b, chunk, first_row, k, n);
    });
}

/// Computes `chunk = a[first_row.., :] · b` for `chunk.len() / n` rows.
///
/// Full `MR`-row groups run the register-tiled micro-kernel over `NR`-column
/// panels; row/column remainders fall back to the axpy loop. Either way each
/// output element accumulates over `p` in ascending order, so the partition
/// into tiles (and threads) never changes the numerics.
fn matmul_rows(a: &[f32], b: &[f32], chunk: &mut [f32], first_row: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let n_main = n - n % NR;
    for (group_idx, group) in chunk.chunks_mut(MR * n).enumerate() {
        let row0 = first_row + group_idx * MR;
        if group.len() == MR * n {
            for j0 in (0..n_main).step_by(NR) {
                tile_nn(a, b, group, row0, k, n, j0);
            }
            if n_main < n {
                for (i, out_row) in group.chunks_mut(n).enumerate() {
                    let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
                    let tail = &mut out_row[n_main..];
                    tail.fill(0.0);
                    for (p, &av) in a_row.iter().enumerate() {
                        axpy(tail, &b[p * n + n_main..(p + 1) * n], av);
                    }
                }
            }
        } else {
            // Fewer than MR rows remain: plain axpy rows.
            for (i, out_row) in group.chunks_mut(n).enumerate() {
                let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
                out_row.fill(0.0);
                for (p, &av) in a_row.iter().enumerate() {
                    axpy(out_row, &b[p * n..p * n + n], av);
                }
            }
        }
    }
}

/// Register-tiled `MR × NR` micro-kernel: `group[.., j0..j0+NR] = Σ_p a·b`.
#[inline]
fn tile_nn(a: &[f32], b: &[f32], group: &mut [f32], row0: usize, k: usize, n: usize, j0: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    let a_rows: [&[f32]; MR] = std::array::from_fn(|i| &a[(row0 + i) * k..(row0 + i) * k + k]);
    for p in 0..k {
        let b_lane: &[f32; NR] = b[p * n + j0..p * n + j0 + NR].try_into().unwrap();
        for i in 0..MR {
            let av = a_rows[i][p];
            for j in 0..NR {
                acc[i][j] += av * b_lane[j];
            }
        }
    }
    for (i, lane) in acc.iter().enumerate() {
        group[i * n + j0..i * n + j0 + NR].copy_from_slice(lane);
    }
}

/// `out += aᵀ · b` with `a: [k,m]`, `b: [k,n]`, `out: [m,n]`, row-major —
/// the fused weight-gradient kernel (`dW += xᵀ·dy`). Accumulates, matching
/// how layer gradients build up across backward calls.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_tn_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check("matmul_tn_acc", a.len(), b.len(), out.len(), m, k, n);
    if m * k * n < PAR_FLOP_THRESHOLD {
        matmul_tn_rows(a, b, out, 0, m, k, n);
        return;
    }
    fleet_parallel::parallel_chunks_mut(out, n, |first_row, chunk| {
        matmul_tn_rows(a, b, chunk, first_row, m, k, n);
    });
}

/// Accumulates `chunk += aᵀ[first_row.., :] · b` for `chunk.len() / n` rows.
///
/// Same tiling as [`matmul_rows`], except the `MR` input scalars per `p` come
/// from a row of `a` (adjacent columns) and the tile *adds* to the output.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    first_row: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let n_main = n - n % NR;
    for (group_idx, group) in chunk.chunks_mut(MR * n).enumerate() {
        let row0 = first_row + group_idx * MR;
        if group.len() == MR * n {
            for j0 in (0..n_main).step_by(NR) {
                tile_tn(a, b, group, row0, m, k, n, j0);
            }
            if n_main < n {
                for (i, out_row) in group.chunks_mut(n).enumerate() {
                    let col = row0 + i;
                    let tail = &mut out_row[n_main..];
                    for p in 0..k {
                        axpy(tail, &b[p * n + n_main..(p + 1) * n], a[p * m + col]);
                    }
                }
            }
        } else {
            for (i, out_row) in group.chunks_mut(n).enumerate() {
                let col = row0 + i;
                for p in 0..k {
                    axpy(out_row, &b[p * n..p * n + n], a[p * m + col]);
                }
            }
        }
    }
}

/// Register-tiled accumulating micro-kernel for the TN layout.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_tn(
    a: &[f32],
    b: &[f32],
    group: &mut [f32],
    row0: usize,
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let b_lane: &[f32; NR] = b[p * n + j0..p * n + j0 + NR].try_into().unwrap();
        let a_lane: &[f32; MR] = a[p * m + row0..p * m + row0 + MR].try_into().unwrap();
        for i in 0..MR {
            let av = a_lane[i];
            for j in 0..NR {
                acc[i][j] += av * b_lane[j];
            }
        }
    }
    for (i, lane) in acc.iter().enumerate() {
        for (o, &v) in group[i * n + j0..i * n + j0 + NR].iter_mut().zip(lane) {
            *o += v;
        }
    }
}

/// `out = a · bᵀ` with `a: [m,k]`, `b: [n,k]`, `out: [m,n]`, row-major — the
/// fused input-gradient kernel (`dx = dy·Wᵀ`). Both operands are read along
/// contiguous rows; each output element is one blocked dot product.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check("matmul_nt", a.len(), b.len(), out.len(), m, k, n);
    if m * k * n < PAR_FLOP_THRESHOLD {
        matmul_nt_rows(a, b, out, 0, k, n);
        return;
    }
    fleet_parallel::parallel_chunks_mut(out, n, |first_row, chunk| {
        matmul_nt_rows(a, b, chunk, first_row, k, n);
    });
}

/// Computes `chunk = a[first_row.., :] · bᵀ` for `chunk.len() / n` rows.
fn matmul_nt_rows(a: &[f32], b: &[f32], chunk: &mut [f32], first_row: usize, k: usize, n: usize) {
    for (i, out_row) in chunk.chunks_mut(n).enumerate() {
        let a_row = &a[(first_row + i) * k..(first_row + i) * k + k];
        for (j, out) in out_row.iter_mut().enumerate() {
            *out = dot(a_row, &b[j * k..j * k + k]);
        }
    }
}

/// The seed repository's single-threaded kernel, kept verbatim as the
/// benchmark baseline and the reference the property tests check the blocked
/// kernels against. Note the `a == 0.0` sparsity branch — see the module docs
/// for why the dense path dropped it.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    check("matmul_naive", a.len(), b.len(), out.len(), m, k, n);
    out.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let row = &b[p * n..(p + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `out = a + factor · b`, element-wise, into a caller-owned buffer.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_scaled(a: &[f32], b: &[f32], factor: f32, out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "add_scaled operand length mismatch");
    assert_eq!(a.len(), out.len(), "add_scaled output length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + factor * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_pattern(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 2654435761usize) as f32 / usize::MAX as f32 - 0.5) * scale)
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (17, 33, 9),
            (64, 64, 64),
            (70, 129, 31),
        ] {
            let a = fill_pattern(m * k, 2.0);
            let b = fill_pattern(k * n, 2.0);
            let mut fast = vec![0.0; m * n];
            let mut naive = vec![0.0; m * n];
            matmul(&a, &b, &mut fast, m, k, n);
            matmul_naive(&a, &b, &mut naive, m, k, n);
            assert_close(&fast, &naive, 1e-4);
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (m, k, n) = (13, 21, 8);
        let a = fill_pattern(k * m, 1.0); // stored [k, m]
        let b = fill_pattern(k * n, 1.0);
        // Reference: transpose a, then naive matmul.
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let mut expected = vec![0.0; m * n];
        matmul_naive(&at, &b, &mut expected, m, k, n);
        let mut out = vec![1.0; m * n]; // non-zero: tn accumulates
        matmul_tn_acc(&a, &b, &mut out, m, k, n);
        let shifted: Vec<f32> = expected.iter().map(|v| v + 1.0).collect();
        assert_close(&out, &shifted, 1e-4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let (m, k, n) = (9, 30, 14);
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(n * k, 1.0); // stored [n, k]
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let mut expected = vec![0.0; m * n];
        matmul_naive(&a, &bt, &mut expected, m, k, n);
        let mut out = vec![0.0; m * n];
        matmul_nt(&a, &b, &mut out, m, k, n);
        assert_close(&out, &expected, 1e-4);
    }

    #[test]
    fn large_shapes_cross_parallel_threshold_and_agree() {
        let (m, k, n) = (128, 64, 128); // 128*64*128 > PAR_FLOP_THRESHOLD
        assert!(m * k * n >= PAR_FLOP_THRESHOLD);
        let a = fill_pattern(m * k, 1.0);
        let b = fill_pattern(k * n, 1.0);
        let mut fast = vec![0.0; m * n];
        let mut naive = vec![0.0; m * n];
        matmul(&a, &b, &mut fast, m, k, n);
        matmul_naive(&a, &b, &mut naive, m, k, n);
        assert_close(&fast, &naive, 1e-3);
    }

    #[test]
    fn dot_is_exact_on_structured_input() {
        let x: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let y = vec![2.0f32; 19];
        assert_eq!(dot(&x, &y), (0..19).sum::<i32>() as f32 * 2.0);
    }

    #[test]
    fn add_scaled_into_buffer() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        let mut out = [0.0; 2];
        add_scaled(&a, &b, 0.5, &mut out);
        assert_eq!(out, [6.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "lhs has")]
    fn dimension_mismatch_panics() {
        let mut out = [0.0; 4];
        matmul(&[1.0; 3], &[1.0; 4], &mut out, 2, 2, 2);
    }
}
