//! A small comment/string-aware Rust scanner.
//!
//! This is *not* a Rust parser. It does exactly what the lint rules need and
//! nothing more: split a source file into (a) a code view with every comment
//! and every string/char-literal body blanked out to spaces (newlines kept,
//! so line numbers survive), (b) the comment text per line, and (c) an
//! identifier/punctuation token stream over the code view. Handles nested
//! block comments, raw strings (`r"…"`, `r#"…"#`, byte and raw-byte forms),
//! escapes inside string and char literals, and the lifetime-vs-char-literal
//! ambiguity (`'a` vs `'a'`).

/// One comment's text on one line. A block comment spanning lines produces
/// one entry per line, so line-oriented walks (the `SAFETY:` lookback, the
/// suppression-marker zone) need no special cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line number.
    pub line: usize,
    /// The comment text on that line, including the `//`/`/*` introducer
    /// characters that fell on it.
    pub text: String,
}

/// One token of the blanked code view: an identifier/number word or a
/// punctuation string (`::`, `=>`, `->` are kept as single tokens; all other
/// punctuation is one token per character).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    /// 1-based line number.
    pub line: usize,
}

/// A scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// The source with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Comments, one entry per (comment, line) pair, in file order.
    pub comments: Vec<Comment>,
    /// Token stream over `code`.
    pub tokens: Vec<Token>,
}

impl ScannedFile {
    pub fn new(path: &str, source: &str) -> Self {
        let (code, comments) = blank_non_code(source);
        let tokens = tokenize(&code);
        ScannedFile {
            path: path.to_string(),
            code,
            comments,
            tokens,
        }
    }

    /// The blanked code text of a 1-based line (empty for lines past EOF).
    pub fn code_line(&self, line: usize) -> &str {
        self.code.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }

    /// Whether a line holds no code other than (possibly) an attribute —
    /// i.e. it is blank, comment-only, or `#[…]`/`#![…]` only. These are the
    /// lines a justification/suppression lookback may walk across.
    pub fn line_is_passable(&self, line: usize) -> bool {
        let trimmed = self.code_line(line).trim();
        trimmed.is_empty()
            || (trimmed.starts_with("#[") || trimmed.starts_with("#![")) && trimmed.ends_with(']')
    }

    /// All comment text attached to `line` itself plus the contiguous run of
    /// passable lines directly above it, concatenated in file order. This is
    /// the zone searched for `SAFETY:` justifications and `lint:allow`
    /// suppression markers.
    pub fn lookback_comments(&self, line: usize) -> String {
        let mut first = line;
        while first > 1 && self.line_is_passable(first - 1) {
            first -= 1;
        }
        let mut out = String::new();
        for c in &self.comments {
            if c.line >= first && c.line <= line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }
}

/// Blanks comments and literal bodies out of `source`, collecting comments.
fn blank_non_code(source: &str) -> (String, Vec<Comment>) {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comments: Vec<Comment> = Vec::new();
    let mut line = 1usize;
    let mut comment_buf = String::new();
    let mut i = 0usize;

    // Pushes a char to the code view, blanking unless `keep`.
    fn emit(code: &mut String, c: char, keep: bool) {
        if c == '\n' || keep {
            code.push(c);
        } else {
            code.push(' ');
        }
    }

    fn flush_comment(comments: &mut Vec<Comment>, buf: &mut String, line: usize) {
        if !buf.is_empty() {
            comments.push(Comment {
                line,
                text: std::mem::take(buf),
            });
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                comment_buf.push(chars[i]);
                emit(&mut code, chars[i], false);
                i += 1;
            }
            flush_comment(&mut comments, &mut comment_buf, line);
            continue;
        }

        // Block comment, possibly nested (Rust nests them).
        if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            comment_buf.push_str("/*");
            emit(&mut code, '/', false);
            emit(&mut code, '*', false);
            i += 2;
            while i < chars.len() && depth > 0 {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    depth += 1;
                    comment_buf.push_str("/*");
                    emit(&mut code, '/', false);
                    emit(&mut code, '*', false);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    depth -= 1;
                    comment_buf.push_str("*/");
                    emit(&mut code, '*', false);
                    emit(&mut code, '/', false);
                    i += 2;
                } else {
                    if c == '\n' {
                        flush_comment(&mut comments, &mut comment_buf, line);
                        line += 1;
                    } else {
                        comment_buf.push(c);
                    }
                    emit(&mut code, c, false);
                    i += 1;
                }
            }
            flush_comment(&mut comments, &mut comment_buf, line);
            continue;
        }

        // Raw (and raw-byte) string: r"…", r#"…"#, br#"…"#, …
        if (c == 'r' || (c == 'b' && next == Some('r'))) && !prev_is_ident_char(&chars, i) {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            while chars.get(start + hashes) == Some(&'#') {
                hashes += 1;
            }
            if chars.get(start + hashes) == Some(&'"') {
                // Emit the prefix (kept: it is code-ish, harmless) and blank
                // the body until `"` followed by `hashes` hashes.
                for &p in &chars[i..start + hashes + 1] {
                    emit(&mut code, p, true);
                }
                i = start + hashes + 1;
                loop {
                    if i >= chars.len() {
                        break;
                    }
                    if chars[i] == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if chars.get(i + 1 + h) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for &p in &chars[i..i + 1 + hashes] {
                                emit(&mut code, p, true);
                            }
                            i += 1 + hashes;
                            break;
                        }
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    emit(&mut code, chars[i], false);
                    i += 1;
                }
                continue;
            }
            // Not a raw string ("r" or "br" used as an identifier); fall
            // through to the default emit below.
        }

        // Ordinary (and byte) string literal.
        if c == '"' {
            emit(&mut code, '"', true);
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c == '\\' {
                    emit(&mut code, c, false);
                    if let Some(&esc) = chars.get(i + 1) {
                        if esc == '\n' {
                            line += 1;
                        }
                        emit(&mut code, esc, false);
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    emit(&mut code, '"', true);
                    i += 1;
                    break;
                }
                if c == '\n' {
                    line += 1;
                }
                emit(&mut code, c, false);
                i += 1;
            }
            continue;
        }

        // Char literal vs lifetime. `'\…'` and `'x'` are literals; `'ident`
        // (no closing quote right after one char) is a lifetime, left as
        // code.
        if c == '\'' {
            let is_char_literal = match next {
                Some('\\') => true,
                // `chars` is a Vec<char>, so 'x' is always exactly three
                // elements: quote, payload, quote.
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char_literal {
                emit(&mut code, '\'', true);
                i += 1;
                if chars.get(i) == Some(&'\\') {
                    emit(&mut code, '\\', false);
                    i += 1;
                    // Escape payload up to the closing quote.
                    while i < chars.len() && chars[i] != '\'' {
                        emit(&mut code, chars[i], false);
                        i += 1;
                    }
                } else if i < chars.len() {
                    emit(&mut code, chars[i], false);
                    i += 1;
                }
                if chars.get(i) == Some(&'\'') {
                    emit(&mut code, '\'', true);
                    i += 1;
                }
                continue;
            }
        }

        if c == '\n' {
            line += 1;
        }
        emit(&mut code, c, true);
        i += 1;
    }
    (code, comments)
}

fn prev_is_ident_char(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

fn tokenize(code: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Multi-char punctuation the rules care about.
        let next = chars.get(i + 1).copied();
        let pair = match (c, next) {
            (':', Some(':')) => Some("::"),
            ('=', Some('>')) => Some("=>"),
            ('-', Some('>')) => Some("->"),
            _ => None,
        };
        if let Some(p) = pair {
            tokens.push(Token {
                text: p.to_string(),
                line,
            });
            i += 2;
            continue;
        }
        tokens.push(Token {
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<String> {
        ScannedFile::new("x.rs", src)
            .tokens
            .iter()
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = ScannedFile::new("x.rs", "let s = \"unsafe { }\"; // unsafe too\nlet t = 1;");
        assert!(!f.tokens.iter().any(|t| t.text == "unsafe"));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("unsafe too"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"unsafe \"quoted\" body\"#; let u = 2;";
        assert!(!toks(src).contains(&"unsafe".to_string()));
        assert!(toks(src).contains(&"u".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        assert!(!toks("let x = b\"unsafe\";").contains(&"unsafe".to_string()));
        assert!(!toks("let x = br#\"unsafe\"#;").contains(&"unsafe".to_string()));
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let f = ScannedFile::new("x.rs", "/* outer /* inner */ still */ let a = 1;");
        assert_eq!(
            f.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["let", "a", "=", "1", ";"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // The lifetime must stay code; the char literal body must blank.
        let t = toks("fn f<'a>(x: &'a str) { let c = 'y'; let d = '\\n'; }");
        assert!(t.contains(&"a".to_string()), "lifetime ident survives");
        assert!(!t.contains(&"y".to_string()), "char body blanked");
        assert!(!t.contains(&"n".to_string()), "escape body blanked");
    }

    #[test]
    fn multiline_block_comment_yields_one_entry_per_line() {
        let f = ScannedFile::new("x.rs", "/* one\n two\n three */\nlet a = 1;");
        let lines: Vec<usize> = f.comments.iter().map(|c| c.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn lookback_crosses_comments_blanks_and_attributes() {
        let src = "\n// SAFETY: fine\n\n#[inline]\nunsafe fn f() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.lookback_comments(5).contains("SAFETY:"));
        // But not across intervening code.
        let src2 = "// SAFETY: fine\nlet x = 1;\nunsafe fn f() {}\n";
        let f2 = ScannedFile::new("x.rs", src2);
        assert!(!f2.lookback_comments(3).contains("SAFETY:"));
    }

    #[test]
    fn identifier_r_is_not_a_raw_string_start() {
        // `for r in xs` — the `r` must not eat the rest of the file.
        let t = toks("for r in xs { let q = r; } let after = 1;");
        assert!(t.contains(&"after".to_string()));
    }

    #[test]
    fn double_colon_and_fat_arrow_are_single_tokens() {
        assert_eq!(
            toks("a::b => c -> d"),
            vec!["a", "::", "b", "=>", "c", "->", "d"]
        );
    }
}
