//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: SplitMix64.
///
/// Every output applies a full avalanche mix to a counter, so there are no
/// weak seeds and the very first draws after seeding are already unbiased —
/// important because the layer initialisers seed a fresh generator per layer
/// with small consecutive seeds and only consume a few dozen values.
/// `Clone`-able, deterministic, not cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The raw generator state — a single `u64` counter. Together with
    /// [`StdRng::from_state`] this is the checkpoint/restore surface: a
    /// restored generator continues the exact output stream of the
    /// checkpointed one (SplitMix64 is a pure function of this counter).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a counter captured with [`StdRng::state`].
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed so that consecutive seeds land far apart in the
        // counter sequence (they would be adjacent otherwise, which is fine
        // statistically but makes streams trivially related).
        Self {
            state: mix(seed ^ 0x2545_F491_4F6C_DD1D),
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}
