//! # fleet-lint
//!
//! An offline, dependency-free static-analysis pass that mechanically
//! enforces the repo-specific invariants every pinned digest in
//! `scripts/expected_digests.txt` rests on. The rules are deliberately
//! narrow — each one encodes a convention this workspace already relies on
//! but that, before this crate, lived only in reviewer memory:
//!
//! * **`unsafe-safety`** — every `unsafe` block, `unsafe fn`, `unsafe impl`
//!   or `unsafe trait` must be justified by a `// SAFETY:` comment (or, for
//!   `unsafe fn`, a `/// # Safety` doc section) in the contiguous
//!   comment/attribute block directly above it. The full inventory of unsafe
//!   sites is emitted in `--json` mode as the audit record.
//! * **`det-collections`** — in the digest-adjacent crates (`core`,
//!   `server`, `ml`, `profiler`, `data`), iterating a `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in map`, …) is
//!   flagged: `std`'s hasher is randomized per process, so any
//!   iteration-order leak into applied state is a bit-stability bug that the
//!   digest sweep would catch only after the fact, on some host, sometimes.
//! * **`wall-clock`** — `Instant`/`SystemTime` are forbidden outside
//!   `crates/bench` and `crates/compat/criterion`. The system is
//!   logical-round only; a wall clock in round code would make trajectories
//!   timing-dependent.
//! * **`thread-hygiene`** — spawning threads (`thread::spawn`,
//!   `thread::Builder`) and `static mut` are forbidden outside
//!   `crates/parallel`. All parallelism must flow through the deterministic
//!   fan-out helpers, which are what make "bit-identical at any thread
//!   count" provable.
//! * **`wire-exhaustive`** — in the codec files (`crates/server/src/wire.rs`
//!   and `checkpoint.rs`), every `encode_X`/`decode_X` (and paired
//!   `put_X`/`get_X`) function is checked against the struct it codes for:
//!   each named field of the struct must appear in *both* the encode and the
//!   decode body. This is exactly the silent-drift class a future wire-v4
//!   field would introduce: added to the struct and one side of the codec,
//!   forgotten on the other.
//!
//! ## Suppression
//!
//! Any finding can be waived, site by site, with an inline justification
//! marker in the comment block directly above (or on) the offending line:
//!
//! ```text
//! // lint:allow(det-collections): drained to a Vec and sorted by key below
//! ```
//!
//! The reason is mandatory — a marker without one does not suppress and is
//! itself reported (rule `lint-marker`), as is a marker naming an unknown
//! rule. There are no file- or crate-level blanket suppressions by design:
//! every waiver is a reviewed, local decision with a stated reason.
//!
//! The scanner underneath ([`scan`]) is comment/string-aware but is not a
//! Rust parser; see its module docs for the exact surface.

#![forbid(unsafe_code)]

pub mod scan;

use scan::ScannedFile;
use std::collections::BTreeSet;

pub const RULE_UNSAFE_SAFETY: &str = "unsafe-safety";
pub const RULE_DET_COLLECTIONS: &str = "det-collections";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_THREAD_HYGIENE: &str = "thread-hygiene";
pub const RULE_WIRE_EXHAUSTIVE: &str = "wire-exhaustive";
pub const RULE_LINT_MARKER: &str = "lint-marker";

/// Every rule name a `lint:allow(…)` marker may reference.
pub const RULES: &[&str] = &[
    RULE_UNSAFE_SAFETY,
    RULE_DET_COLLECTIONS,
    RULE_WALL_CLOCK,
    RULE_THREAD_HYGIENE,
    RULE_WIRE_EXHAUSTIVE,
    RULE_LINT_MARKER,
];

/// Where each rule applies, as repo-relative path prefixes. The defaults are
/// this repository's policy; tests substitute their own.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Crates whose map/set iteration endangers the pinned digests.
    pub det_collection_crates: Vec<String>,
    /// The only places allowed to read wall clocks (benchmark harnesses).
    pub wall_clock_exempt: Vec<String>,
    /// The only crate allowed to create threads or hold `static mut`.
    pub thread_exempt: Vec<String>,
    /// Codec files whose encode/decode pairs are field-symmetry checked.
    pub codec_files: Vec<String>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            det_collection_crates: vec![
                "crates/core/".into(),
                "crates/server/".into(),
                "crates/ml/".into(),
                "crates/profiler/".into(),
                "crates/data/".into(),
                // Crash recovery replays the journal through the live apply
                // path; nondeterministic iteration there would fork the
                // post-restart digest from the uninterrupted one.
                "crates/durability/".into(),
            ],
            wall_clock_exempt: vec![
                "crates/bench/".into(),
                "crates/compat/criterion/".into(),
                // The telemetry recorder owns the workspace's measurement
                // clock (`Recorder::now_ns`). Everything else — including
                // the load harness in `crates/loadgen`, which paces itself
                // through sink timestamps — stays under the rule, so
                // workload *generation* can never read wall clocks.
                "crates/telemetry/".into(),
                // The socket transport's deadline module is the one place the
                // transport reads wall clocks; the rest of the crate stays
                // under the rule so socket code cannot quietly grow
                // time-dependent behaviour.
                "crates/transport/src/deadline.rs".into(),
            ],
            thread_exempt: vec![
                "crates/parallel/".into(),
                // Thread-per-connection is the transport server's concurrency
                // model; determinism is preserved by the core mutex, not by
                // avoiding threads.
                "crates/transport/".into(),
            ],
            codec_files: vec![
                "crates/server/src/wire.rs".into(),
                "crates/server/src/checkpoint.rs".into(),
                // The journal-record / checkpoint-container codec: a field
                // silently dropped from recovery replay is durable data loss.
                "crates/durability/src/codec.rs".into(),
            ],
        }
    }
}

fn under(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

/// A finding waived by an inline `lint:allow` marker, kept for the record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressedFinding {
    pub finding: Finding,
    pub reason: String,
}

/// One `unsafe` site, for the audit inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub path: String,
    pub line: usize,
    /// "block", "fn", "impl" or "trait".
    pub kind: &'static str,
    pub justified: bool,
}

/// The result of a lint pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings — a non-empty list fails the CI gate.
    pub findings: Vec<Finding>,
    /// Findings waived by a justified marker.
    pub suppressed: Vec<SuppressedFinding>,
    /// Every `unsafe` site encountered, justified or not.
    pub unsafe_inventory: Vec<UnsafeSite>,
    pub files_scanned: usize,
}

/// Lints in-memory sources: `(repo-relative path, contents)` pairs. The
/// binary feeds it the workspace; the fixture corpus feeds it samples.
pub fn lint_sources(policy: &Policy, sources: &[(String, String)]) -> Report {
    let files: Vec<ScannedFile> = sources
        .iter()
        .map(|(path, text)| ScannedFile::new(path, text))
        .collect();
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut raw: Vec<Finding> = Vec::new();
    for file in &files {
        check_unsafe_safety(file, &mut raw, &mut report.unsafe_inventory);
        if under(&file.path, &policy.det_collection_crates) {
            check_det_collections(file, &mut raw);
        }
        if !under(&file.path, &policy.wall_clock_exempt) {
            check_wall_clock(file, &mut raw);
        }
        if !under(&file.path, &policy.thread_exempt) {
            check_thread_hygiene(file, &mut raw);
        }
        check_markers(file, &mut raw);
    }
    for codec in &policy.codec_files {
        if let Some(file) = files.iter().find(|f| &f.path == codec) {
            check_wire_exhaustive(file, &files, &mut raw);
        }
    }
    // Split raw findings into suppressed and live.
    for finding in raw {
        let file = files
            .iter()
            .find(|f| f.path == finding.path)
            .expect("finding points at a scanned file");
        match suppression_reason(file, finding.line, finding.rule) {
            Some(reason) => report
                .suppressed
                .push(SuppressedFinding { finding, reason }),
            None => report.findings.push(finding),
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.finding.path, a.finding.line).cmp(&(&b.finding.path, b.finding.line)));
    report
        .unsafe_inventory
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

// ---------------------------------------------------------------------------
// Suppression markers
// ---------------------------------------------------------------------------

/// A parsed `lint:allow(rules): reason` marker.
struct Marker {
    line: usize,
    rules: Vec<String>,
    reason: String,
}

fn parse_markers(file: &ScannedFile) -> Vec<Marker> {
    let mut out = Vec::new();
    for comment in &file.comments {
        // Markers live in plain `//` comments only; doc comments (`///`,
        // `//!`, `/**`, `/*!`) merely *describe* the syntax — rustdoc prose
        // must never toggle a gate.
        let t = comment.text.trim_start();
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| t.starts_with(d))
        {
            continue;
        }
        let Some(pos) = comment.text.find("lint:allow(") else {
            continue;
        };
        let rest = &comment.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(Marker {
                line: comment.line,
                rules: Vec::new(),
                reason: String::new(),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Marker {
            line: comment.line,
            rules,
            reason,
        });
    }
    out
}

/// Returns the marker reason if a *valid* marker for `rule` covers `line`:
/// the marker must sit on the line itself or in the contiguous
/// comment/blank/attribute block directly above it, name the rule, and carry
/// a non-empty reason.
fn suppression_reason(file: &ScannedFile, line: usize, rule: &str) -> Option<String> {
    let mut first = line;
    while first > 1 && file.line_is_passable(first - 1) {
        first -= 1;
    }
    parse_markers(file)
        .into_iter()
        .filter(|m| m.line >= first && m.line <= line)
        .find(|m| m.rules.iter().any(|r| r == rule) && !m.reason.is_empty())
        .map(|m| m.reason)
}

/// The `lint-marker` meta-rule: malformed markers are findings themselves,
/// so a typo'd rule name or a reason-less waiver can never silently turn a
/// gate off.
fn check_markers(file: &ScannedFile, findings: &mut Vec<Finding>) {
    for marker in parse_markers(file) {
        if marker.rules.is_empty() {
            findings.push(Finding {
                rule: RULE_LINT_MARKER,
                path: file.path.clone(),
                line: marker.line,
                message: "malformed lint:allow marker: expected `lint:allow(<rule>): <reason>`"
                    .into(),
            });
            continue;
        }
        for rule in &marker.rules {
            if !RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    rule: RULE_LINT_MARKER,
                    path: file.path.clone(),
                    line: marker.line,
                    message: format!("lint:allow names unknown rule `{rule}`"),
                });
            }
        }
        if marker.reason.is_empty() {
            findings.push(Finding {
                rule: RULE_LINT_MARKER,
                path: file.path.clone(),
                line: marker.line,
                message: "lint:allow marker must state a reason after the colon".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-safety
// ---------------------------------------------------------------------------

fn check_unsafe_safety(
    file: &ScannedFile,
    findings: &mut Vec<Finding>,
    inventory: &mut Vec<UnsafeSite>,
) {
    let tokens = &file.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text != "unsafe" {
            continue;
        }
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        let after = tokens.get(i + 2).map(|t| t.text.as_str());
        // `unsafe fn(` in type position is a function-pointer *type*, not a
        // site with a body to justify.
        if next == Some("fn") && after == Some("(") {
            continue;
        }
        let kind = match next {
            Some("fn") => "fn",
            Some("impl") => "impl",
            Some("trait") => "trait",
            _ => "block",
        };
        let zone = file.lookback_comments(tok.line);
        // `// SAFETY:` is the justification for blocks/impls; `/// # Safety`
        // (the std doc convention) also counts for `unsafe fn` contracts.
        let justified = zone.contains("SAFETY:") || zone.contains("# Safety");
        inventory.push(UnsafeSite {
            path: file.path.clone(),
            line: tok.line,
            kind,
            justified,
        });
        if !justified {
            findings.push(Finding {
                rule: RULE_UNSAFE_SAFETY,
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    "`unsafe {kind}` without a `// SAFETY:` comment (or `# Safety` doc \
                     section) directly above stating the upheld invariant"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// det-collections
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Flags iteration over bindings declared as `HashMap`/`HashSet` *in the
/// same file* (field declarations, `let` type ascriptions, `HashMap::new()`
/// initialisers). Field accesses are only matched through `self.<name>` —
/// `other.<name>` cannot be resolved without real type information, and the
/// declaring file is where the iteration almost always lives.
fn check_det_collections(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    let mut map_names: BTreeSet<String> = BTreeSet::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text != "HashMap" && tok.text != "HashSet" {
            continue;
        }
        // `name: HashMap<…>` (field or let ascription) or `name = HashMap::…`.
        if i >= 2 {
            let prev = &tokens[i - 1].text;
            let name = &tokens[i - 2].text;
            if (prev == ":" || prev == "=") && is_ident(name) {
                map_names.insert(name.clone());
            }
        }
    }
    if map_names.is_empty() {
        return;
    }
    let is_map = |t: &str| map_names.contains(t);
    for (i, tok) in tokens.iter().enumerate() {
        if !is_map(&tok.text) {
            continue;
        }
        // Resolve the access path: bare `name` or `self.name`; skip
        // `other.name`, which this file-local analysis cannot type.
        if i >= 1 && tokens[i - 1].text == "." && !(i >= 2 && tokens[i - 2].text == "self") {
            continue;
        }
        // `name.iter()`-style calls.
        if let (Some(dot), Some(method), Some(paren)) =
            (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3))
        {
            if dot.text == "." && ITER_METHODS.contains(&method.text.as_str()) && paren.text == "("
            {
                findings.push(Finding {
                    rule: RULE_DET_COLLECTIONS,
                    path: file.path.clone(),
                    line: tok.line,
                    message: format!(
                        "`.{}()` on hash-ordered `{}`: iteration order is randomized per \
                         process and must not reach applied state (sort first, use BTreeMap, \
                         or justify with lint:allow)",
                        method.text, tok.text
                    ),
                });
                continue;
            }
        }
        // `for x in name` / `for x in &name` / `for x in &mut self.name`.
        let mut j = i;
        while j >= 1 {
            let prev = tokens[j - 1].text.as_str();
            if prev == "&" || prev == "mut" || prev == "." || prev == "self" {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 1 && tokens[j - 1].text == "in" && j >= 2 && tokens[j - 2].text != "for" {
            // `in` not from a for-loop (e.g. the contextual keyword does not
            // exist elsewhere in Rust) — still treat as iteration guardedly.
        }
        if j >= 1 && tokens[j - 1].text == "in" {
            findings.push(Finding {
                rule: RULE_DET_COLLECTIONS,
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    "`for … in {}` iterates a hash-ordered collection: order is randomized \
                     per process and must not reach applied state",
                    tok.text
                ),
            });
        }
    }
}

fn is_ident(t: &str) -> bool {
    let mut chars = t.chars();
    matches!(chars.next(), Some(c) if c.is_alphabetic() || c == '_')
        && chars.all(|c| c.is_alphanumeric() || c == '_')
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

fn check_wall_clock(file: &ScannedFile, findings: &mut Vec<Finding>) {
    for tok in &file.tokens {
        if tok.text == "Instant" || tok.text == "SystemTime" {
            findings.push(Finding {
                rule: RULE_WALL_CLOCK,
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    "`{}` outside the bench harnesses: the system is logical-round only, \
                     wall clocks make trajectories timing-dependent",
                    tok.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// thread-hygiene
// ---------------------------------------------------------------------------

fn check_thread_hygiene(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text == "thread"
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && matches!(
                tokens.get(i + 2).map(|t| t.text.as_str()),
                Some("spawn") | Some("Builder")
            )
        {
            let what = tokens[i + 2].text.clone();
            findings.push(Finding {
                rule: RULE_THREAD_HYGIENE,
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    "`thread::{what}` outside crates/parallel: all parallelism must go \
                     through the deterministic fan-out helpers"
                ),
            });
        }
        if tok.text == "static" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("mut") {
            findings.push(Finding {
                rule: RULE_THREAD_HYGIENE,
                path: file.path.clone(),
                line: tok.line,
                message: "`static mut` outside crates/parallel: use interior mutability \
                     behind the pool's synchronisation instead"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// wire-exhaustive
// ---------------------------------------------------------------------------

/// A function's extent in a token stream.
struct FnSpan {
    name: String,
    def_line: usize,
    /// Token range of the signature (after the name, up to the body brace).
    sig: (usize, usize),
    /// Token range of the body, braces included.
    body: (usize, usize),
}

fn function_spans(file: &ScannedFile) -> Vec<FnSpan> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "fn" || i + 1 >= tokens.len() || !is_ident(&tokens[i + 1].text) {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let def_line = tokens[i].line;
        let sig_start = i + 2;
        // The body starts at the first `{` after the signature; a `;` first
        // means a bodyless declaration (trait method) — skip it.
        let mut j = sig_start;
        let mut body = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => {
                    body = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let Some(open) = body else {
            i = j.max(i + 1);
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnSpan {
            name,
            def_line,
            sig: (sig_start, open),
            body: (open, k.min(tokens.len())),
        });
        i = open + 1; // nested fns inside bodies are still discovered
    }
    out
}

/// The payload type of a decode function: the first identifier inside
/// `Result<…>` in its return type.
fn decode_target_type(file: &ScannedFile, span: &FnSpan) -> Option<String> {
    let tokens = &file.tokens;
    let mut i = span.sig.0;
    while i + 2 < span.sig.1 {
        if tokens[i].text == "->" {
            // Scan the return type for `Result < Type`.
            let mut j = i + 1;
            while j + 2 < span.sig.1 + 1 {
                if tokens[j].text == "Result"
                    && tokens.get(j + 1).map(|t| t.text.as_str()) == Some("<")
                {
                    let t = &tokens[j + 2].text;
                    return is_ident(t).then(|| t.clone());
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Finds `struct <name> { … }` anywhere in the scanned set and returns its
/// named fields (None for tuple/unit structs or if undefined).
fn struct_fields(files: &[ScannedFile], name: &str) -> Option<Vec<String>> {
    for file in files {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if tokens[i].text != "struct"
                || tokens.get(i + 1).map(|t| t.text.as_str()) != Some(name)
            {
                continue;
            }
            // Skip generics, find the body opener.
            let mut j = i + 2;
            let mut angle = 0usize;
            loop {
                match tokens.get(j).map(|t| t.text.as_str()) {
                    Some("<") => angle += 1,
                    Some(">") => angle = angle.saturating_sub(1),
                    Some("{") if angle == 0 => break,
                    Some("(") | Some(";") if angle == 0 => return None, // tuple/unit struct
                    None => return None,
                    _ => {}
                }
                j += 1;
            }
            return Some(parse_named_fields(tokens, j));
        }
    }
    None
}

/// Parses `ident: Type,` entries from a struct body starting at the `{`
/// token, skipping attributes and visibility modifiers.
fn parse_named_fields(tokens: &[scan::Token], open: usize) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0usize; // (), [], {}, <> all counted while skipping types
    let mut i = open;
    let mut expecting_field = false;
    while i < tokens.len() {
        let t = tokens[i].text.as_str();
        match t {
            "{" if depth == 0 && i == open => {
                expecting_field = true;
            }
            "}" if depth == 0 => break,
            // Attribute: skip the bracketed group.
            "#" if expecting_field && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") => {
                let mut d = 0usize;
                i += 1;
                while i < tokens.len() {
                    match tokens[i].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            // Swallow a `pub(crate)`/`pub(super)` group; bare `pub` needs no
            // arm — it is an ident not followed by `:`, so it falls through.
            "pub" if expecting_field && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(") => {
                while i < tokens.len() && tokens[i].text != ")" {
                    i += 1;
                }
            }
            _ if expecting_field
                && is_ident(t)
                && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(":") =>
            {
                fields.push(t.to_string());
                expecting_field = false;
                i += 1; // consume the `:`; the type is skipped below
            }
            "," if depth == 0 => expecting_field = true,
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
            _ => {}
        }
        i += 1;
    }
    fields
}

fn body_has_ident(file: &ScannedFile, span: &FnSpan, ident: &str) -> bool {
    file.tokens[span.body.0..span.body.1]
        .iter()
        .any(|t| t.text == ident)
}

/// Pairs `encode_X`/`decode_X` and `put_X`/`get_X` functions in a codec file
/// and verifies every named field of the decoded struct appears in both
/// bodies. `encode_`-prefixed functions additionally *must* have a partner.
fn check_wire_exhaustive(file: &ScannedFile, all: &[ScannedFile], findings: &mut Vec<Finding>) {
    let spans = function_spans(file);
    let find = |name: &str| spans.iter().find(|s| s.name == name);
    for span in &spans {
        let (partner_name, required) = if let Some(s) = span.name.strip_prefix("encode_") {
            (format!("decode_{s}"), true)
        } else if let Some(s) = span.name.strip_prefix("put_") {
            (format!("get_{s}"), false)
        } else {
            continue;
        };
        let Some(partner) = find(&partner_name) else {
            if required {
                findings.push(Finding {
                    rule: RULE_WIRE_EXHAUSTIVE,
                    path: file.path.clone(),
                    line: span.def_line,
                    message: format!(
                        "`{}` has no matching `{partner_name}` in this file: every wire \
                         encoder needs a symmetric decoder",
                        span.name
                    ),
                });
            }
            continue;
        };
        let Some(type_name) = decode_target_type(file, partner) else {
            continue;
        };
        let Some(fields) = struct_fields(all, &type_name) else {
            continue;
        };
        for field in fields {
            for (dir, s) in [("encode", span), ("decode", partner)] {
                if !body_has_ident(file, s, &field) {
                    findings.push(Finding {
                        rule: RULE_WIRE_EXHAUSTIVE,
                        path: file.path.clone(),
                        line: s.def_line,
                        message: format!(
                            "field `{field}` of `{type_name}` never appears in the {dir} \
                             path `{}`: a field coded on one side only drifts silently \
                             on the wire",
                            s.name
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// JSON rendering (dependency-free)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Renders the report as a self-describing JSON document (schema
    /// `fleet-lint-v1`), the artifact CI uploads next to the bench JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"fleet-lint-v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                f.rule,
                json_escape(&f.path),
                f.line,
                json_escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"suppressed\": [\n");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
                s.finding.rule,
                json_escape(&s.finding.path),
                s.finding.line,
                json_escape(&s.reason),
                if i + 1 < self.suppressed.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n  \"unsafe_inventory\": [\n");
        for (i, u) in self.unsafe_inventory.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"justified\": {}}}{}\n",
                json_escape(&u.path),
                u.line,
                u.kind,
                u.justified,
                if i + 1 < self.unsafe_inventory.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Report {
        lint_sources(&Policy::default(), &[(path.to_string(), src.to_string())])
    }

    fn rules_of(report: &Report) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unjustified_unsafe_block_is_flagged() {
        let r = lint_one("crates/x/src/lib.rs", "fn f() { unsafe { g(); } }");
        assert_eq!(rules_of(&r), vec![RULE_UNSAFE_SAFETY]);
        assert_eq!(r.unsafe_inventory.len(), 1);
        assert!(!r.unsafe_inventory[0].justified);
    }

    #[test]
    fn safety_comment_justifies_block() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g(); }\n}";
        let r = lint_one("crates/x/src/lib.rs", src);
        assert!(r.findings.is_empty());
        assert!(r.unsafe_inventory[0].justified);
    }

    #[test]
    fn safety_doc_section_justifies_unsafe_fn() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must own `p`.\nunsafe fn f(p: *mut u8) {}";
        let r = lint_one("crates/x/src/lib.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.unsafe_inventory[0].kind, "fn");
    }

    #[test]
    fn fn_pointer_type_is_not_a_site() {
        let r = lint_one(
            "crates/x/src/lib.rs",
            "struct S { run: unsafe fn(*const ()) }",
        );
        assert!(r.findings.is_empty());
        assert!(r.unsafe_inventory.is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "// unsafe { } in prose\nfn f() { let s = \"unsafe { }\"; }";
        let r = lint_one("crates/x/src/lib.rs", src);
        assert!(r.findings.is_empty());
        assert!(r.unsafe_inventory.is_empty());
    }

    #[test]
    fn map_iteration_is_flagged_in_det_crates_only() {
        let src = "struct S { m: HashMap<u64, u32> }\nimpl S { fn f(&self) { for x in self.m.values() { let _ = x; } } }";
        let r = lint_one("crates/core/src/lib.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_DET_COLLECTIONS]);
        let r2 = lint_one("crates/device/src/lib.rs", src);
        assert!(r2.findings.is_empty());
    }

    #[test]
    fn foreign_field_paths_are_not_flagged() {
        // `state.personal` is a different type's Vec field; only `self.…`
        // and bare bindings resolve to the file-local map declarations.
        let src = "struct S { personal: HashMap<String, u32> }\nfn g(state: &T) { state.personal.iter(); }";
        let r = lint_one("crates/profiler/src/lib.rs", src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn contains_and_len_are_fine() {
        let src = "fn f(xs: &[usize]) { let s: HashSet<usize> = xs.iter().cloned().collect(); \
                   let _ = s.len() + s.contains(&3) as usize; }";
        let r = lint_one("crates/data/src/lib.rs", src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_bench() {
        let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }";
        let r = lint_one("crates/server/src/x.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_WALL_CLOCK, RULE_WALL_CLOCK]);
        assert!(lint_one("crates/bench/src/x.rs", src).findings.is_empty());
        assert!(lint_one("crates/compat/criterion/src/lib.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn thread_spawn_and_static_mut_flagged_outside_parallel() {
        let src = "static mut X: u32 = 0;\nfn f() { std::thread::spawn(|| {}); }";
        let r = lint_one("crates/server/src/x.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_THREAD_HYGIENE, RULE_THREAD_HYGIENE]);
        assert!(lint_one("crates/parallel/src/lib.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn suppression_requires_reason_and_known_rule() {
        let ok = "// lint:allow(wall-clock): bench-only scratch file\nuse std::time::Instant;";
        let r = lint_one("crates/server/src/x.rs", ok);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed.len(), 1);

        let no_reason = "// lint:allow(wall-clock)\nuse std::time::Instant;";
        let r = lint_one("crates/server/src/x.rs", no_reason);
        assert!(rules_of(&r).contains(&RULE_LINT_MARKER));
        assert!(rules_of(&r).contains(&RULE_WALL_CLOCK), "must not suppress");

        let bad_rule = "// lint:allow(wallclock): typo'd\nuse std::time::Instant;";
        let r = lint_one("crates/server/src/x.rs", bad_rule);
        assert!(rules_of(&r).contains(&RULE_LINT_MARKER));
    }

    #[test]
    fn wire_pair_field_asymmetry_is_flagged() {
        let protocol = (
            "crates/server/src/protocol.rs".to_string(),
            "pub struct Msg { pub a: u64, pub b: u64 }".to_string(),
        );
        let wire = (
            "crates/server/src/wire.rs".to_string(),
            "pub fn encode_msg(m: &Msg) -> Vec<u8> { emit(m.a); emit(m.b); vec![] }\n\
             pub fn decode_msg(buf: &[u8]) -> Result<Msg, E> { Ok(Msg { a: read(buf), b: 0 }) }"
                .to_string(),
        );
        // `b` appears in both bodies above; break the decode side.
        let broken = (
            "crates/server/src/wire.rs".to_string(),
            "pub fn encode_msg(m: &Msg) -> Vec<u8> { emit(m.a); emit(m.b); vec![] }\n\
             pub fn decode_msg(buf: &[u8]) -> Result<Msg, E> { let a = read(buf); Ok(make(a)) }"
                .to_string(),
        );
        let good = lint_sources(&Policy::default(), &[protocol.clone(), wire]);
        assert!(good.findings.is_empty(), "{:?}", good.findings);
        let bad = lint_sources(&Policy::default(), &[protocol, broken]);
        let wire_findings: Vec<_> = bad
            .findings
            .iter()
            .filter(|f| f.rule == RULE_WIRE_EXHAUSTIVE)
            .collect();
        assert_eq!(wire_findings.len(), 1, "{:?}", bad.findings);
        assert!(wire_findings[0].message.contains("`b`"));
        assert!(wire_findings[0].message.contains("decode"));
    }

    #[test]
    fn encoder_without_decoder_is_flagged() {
        let wire = (
            "crates/server/src/wire.rs".to_string(),
            "pub fn encode_ack(a: &Ack) -> Vec<u8> { vec![] }".to_string(),
        );
        let r = lint_sources(&Policy::default(), &[wire]);
        assert_eq!(rules_of(&r), vec![RULE_WIRE_EXHAUSTIVE]);
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let r = lint_one("crates/x/src/lib.rs", "fn f() { unsafe { g(); } }");
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"fleet-lint-v1\""));
        assert!(json.contains("\"unsafe_inventory\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
