//! Regenerates the corresponding table/figure of the paper. Pass `--quick`
//! for a fast smoke-test configuration.
fn main() {
    fleet_bench::experiments::fig15_controller_thresholds::run(fleet_bench::Scale::from_args());
}
