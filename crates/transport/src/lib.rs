//! # fleet-transport
//!
//! A real socket transport for the FLeet middleware: length-framed messages
//! over Unix-domain or localhost-TCP sockets, a thread-per-connection
//! [`TransportServer`] accept loop multiplexing N worker processes onto one
//! [`fleet_server::FleetServer`], and a blocking [`WorkerClient`] that
//! drives the existing [`fleet_server::RetryPolicy`] through real
//! reconnects.
//!
//! The paper's middleware ships Kryo+Gzip objects over HTTP; everything in
//! this workspace ran in-process until now. This crate closes the ROADMAP's
//! "socket transport + many-client FleetServer" item by putting the v1–v3
//! wire codec (plus the response/ack codec it grew for this) on an actual
//! connection boundary — one that can stall, tear or die.
//!
//! ## Robustness contract
//!
//! * **Frames, not streams**: every message is `[u32 length][kind][payload]`
//!   ([`frame`]). A frame longer than [`frame::MAX_FRAME_LEN`] kills the
//!   connection before a byte of its body is read.
//! * **A bad peer kills its connection, never the server**: torn frames,
//!   unknown kinds, malformed payloads and deadline overruns all end with an
//!   `Error` frame (best effort) and a closed socket; the accept loop and
//!   every other connection keep going.
//! * **Deadlines**: all socket reads run under a per-frame wall-clock budget
//!   ([`deadline`] — the one module in the crate allowed to touch
//!   `Instant`), so a stalled peer cannot pin its thread forever.
//! * **Disconnect reclaims leases**: tasks assigned over a connection that
//!   dies re-enter the pool immediately through PR 6's expiry path
//!   (`FleetServer::reclaim_task`); a straggler upload from a resurrected
//!   worker is classified `Expired`, never applied.
//! * **Overload is a wire response**: a saturated shard surfaces as
//!   `RejectionReason::Overloaded` in a `Response` frame, and the worker's
//!   bounded-backoff retry loop is the client's reconnect loop.
//! * **Shutdown drains**: [`TransportServer::shutdown`] stops accepting,
//!   closes every connection, flushes per-shard pending gradients and
//!   returns (optionally persists) a checkpoint.
//! * **Server death is recoverable**: with [`TransportConfig::durability`]
//!   set, every applied exchange is journaled (write-ahead, CRC-framed)
//!   before its reply frame leaves, checkpoints land atomically on a step
//!   cadence, and [`TransportServer::bind`] recovers checkpoint + journal
//!   replay before the accept loop opens — a SIGKILLed server restarted
//!   from disk reproduces the uninterrupted run's digest bit-for-bit, and a
//!   pre-crash upload retransmitted after restart classifies `Duplicate`.
//!
//! Determinism note: the transport never reorders what the core applies —
//! every request/result exchange runs under one mutex over the
//! `FleetServer` — so a schedule of exchanges produces exactly the bytes the
//! in-process run produces. The multi-process demo pins that digest.

#![forbid(unsafe_code)]

pub mod client;
pub mod conn;
pub mod deadline;
pub(crate) mod durable;
pub mod frame;
pub mod server;

pub use client::{ClientConfig, ClientError, WorkerClient};
pub use conn::{Endpoint, Stream};
pub use deadline::DeadlineReader;
pub use frame::{FrameError, FrameKind, ServerStatus, MAX_FRAME_LEN};
// Re-exported so embedders configure durability without a direct
// fleet-durability dependency.
pub use fleet_durability::{DurabilityOptions, FsyncPolicy};
pub use server::{TransportConfig, TransportConfigBuilder, TransportConfigError, TransportServer};
