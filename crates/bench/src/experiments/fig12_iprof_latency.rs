//! Figure 12: I-Prof vs MAUI against the 3-second computation-time SLO over
//! the 21 AWS Device Farm devices. A round-robin dispatcher alternates each
//! device's requests between the two profilers (as in the paper), and we
//! report the per-request computation times, the deviation CDF and the
//! proposed mini-batch sizes.

use crate::experiments::common::profiler_training_profiles;
use crate::{ExperimentWriter, Scale};
use fleet_device::profile::aws_device_farm_set;
use fleet_device::Device;
use fleet_profiler::eval::DeviationStats;
use fleet_profiler::training::{collect_calibration, pretrained_iprof, pretrained_maui};
use fleet_profiler::{Slo, WorkloadProfiler};

/// Runs the computation-time-SLO comparison.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig12_iprof_latency");
    out.comment("Figure 12: I-Prof vs MAUI, computation-time SLO = 3 s, 21 AWS devices");
    let slo = Slo::paper_latency_default();
    let slo_seconds = slo.computation_seconds.unwrap_or(3.0);

    // Offline bootstrap on disjoint training devices (batch sweep up to 2x SLO).
    let calibration = collect_calibration(&profiler_training_profiles(), slo, 8, 40, 101);
    let mut iprof = pretrained_iprof(slo, &calibration);
    let mut maui = pretrained_maui(slo, &calibration);

    let requests_per_device = scale.pick(6, 14);
    let mut iprof_latencies = Vec::new();
    let mut maui_latencies = Vec::new();

    out.row("profiler,device,request,batch_size,computation_seconds,deviation_seconds");
    for (device_index, profile) in aws_device_farm_set().into_iter().enumerate() {
        // Two device replicas so both profilers see the same hardware state
        // trajectory independently.
        let mut device_for_iprof = Device::new(profile.clone(), 500 + device_index as u64);
        let mut device_for_maui = Device::new(profile.clone(), 500 + device_index as u64);
        for request in 0..requests_per_device {
            for (which, profiler, device, sink) in [
                (
                    "I-Prof",
                    &mut iprof as &mut dyn WorkloadProfiler,
                    &mut device_for_iprof,
                    &mut iprof_latencies,
                ),
                (
                    "MAUI",
                    &mut maui as &mut dyn WorkloadProfiler,
                    &mut device_for_maui,
                    &mut maui_latencies,
                ),
            ] {
                let features = device.features();
                let batch = profiler.predict(&profile.name, &features);
                let exec = device.execute_task(batch);
                profiler.observe(
                    &profile.name,
                    &features,
                    batch,
                    exec.computation_seconds,
                    exec.energy_pct,
                );
                sink.push(exec.computation_seconds);
                out.row(format!(
                    "{which},{},{request},{batch},{:.4},{:.4}",
                    profile.name,
                    exec.computation_seconds,
                    (exec.computation_seconds - slo_seconds).abs()
                ));
                device.idle(120.0);
            }
        }
    }

    let iprof_stats = DeviationStats::from_measurements(&iprof_latencies, slo_seconds);
    let maui_stats = DeviationStats::from_measurements(&maui_latencies, slo_seconds);
    out.comment(format!(
        "I-Prof deviation: p50={:.3}s p90={:.3}s max={:.3}s over {} tasks (paper p90: 0.75 s)",
        iprof_stats.p50, iprof_stats.p90, iprof_stats.max, iprof_stats.count
    ));
    out.comment(format!(
        "MAUI deviation: p50={:.3}s p90={:.3}s max={:.3}s over {} tasks (paper p90: 2.7 s)",
        maui_stats.p50, maui_stats.p90, maui_stats.max, maui_stats.count
    ));
    out.finish();
}
