//! Binary checkpoint codec for the FLeet server.
//!
//! Serialises a [`FleetServerState`] — parameters, vector clocks, per-shard
//! pending buffers, aggregator + I-Prof state, controller counters, the lease
//! table and the worker routing map — with the same idiom as [`crate::wire`]:
//! a one-byte version tag, `u32` little-endian length prefixes bounded by
//! [`MAX_FIELD_LEN`](crate::wire::MAX_FIELD_LEN), raw little-endian scalars.
//! A checkpoint taken mid-run and restored into a freshly constructed server
//! resumes bit-identically (see the crash-restart test in
//! `tests/parallel_determinism.rs`).

use crate::server::FleetServerState;
use crate::tasks::TaskTableState;
use crate::wire::{
    checked_field_len, get_f32_vec, get_len, get_string, get_u64_vec, need, put_f32_slice, put_str,
    put_u64_slice, WireError,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fleet_core::{AggregatorState, ParameterServerState};
use fleet_profiler::{IProfState, SlopePredictorState};

/// Checkpoint format version.
const CHECKPOINT_VERSION: u8 = 1;

fn put_server_state(buf: &mut BytesMut, state: &ParameterServerState) {
    put_f32_slice(buf, &state.parameters);
    buf.put_u32_le(checked_field_len(state.shard_pending.len()));
    for pending in &state.shard_pending {
        buf.put_u32_le(checked_field_len(pending.len()));
        for segment in pending {
            put_f32_slice(buf, segment);
        }
    }
    put_u64_slice(buf, &state.shard_clocks);
    put_u64_slice(buf, &state.shard_applied);
    buf.put_u64_le(state.pending_count as u64);
    buf.put_u64_le(state.clock);
    buf.put_u64_le(state.updates_received);
    put_u64_slice(buf, &state.last_shard_staleness);
    put_f32_slice(buf, &state.last_shard_weights);
    put_u64_slice(buf, &state.aggregator.staleness_values);
    put_u64_slice(buf, &state.aggregator.label_counts);
}

fn get_server_state(buf: &mut Bytes) -> Result<ParameterServerState, WireError> {
    let parameters = get_f32_vec(buf)?;
    let shard_count = get_len(buf)?;
    let mut shard_pending = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let segments = get_len(buf)?;
        let mut pending = Vec::with_capacity(segments);
        for _ in 0..segments {
            pending.push(get_f32_vec(buf)?);
        }
        shard_pending.push(pending);
    }
    let shard_clocks = get_u64_vec(buf)?;
    let shard_applied = get_u64_vec(buf)?;
    need(buf, 3 * 8)?;
    let pending_count = buf.get_u64_le() as usize;
    let clock = buf.get_u64_le();
    let updates_received = buf.get_u64_le();
    let last_shard_staleness = get_u64_vec(buf)?;
    let last_shard_weights = get_f32_vec(buf)?;
    let staleness_values = get_u64_vec(buf)?;
    let label_counts = get_u64_vec(buf)?;
    Ok(ParameterServerState {
        parameters,
        shard_pending,
        shard_clocks,
        shard_applied,
        pending_count,
        clock,
        updates_received,
        last_shard_staleness,
        last_shard_weights,
        aggregator: AggregatorState {
            staleness_values,
            label_counts,
        },
    })
}

fn put_predictor_state(buf: &mut BytesMut, state: &SlopePredictorState) {
    put_f32_slice(buf, &state.global);
    buf.put_u32_le(checked_field_len(state.personal.len()));
    for (model, theta, updates) in &state.personal {
        put_str(buf, model);
        put_f32_slice(buf, theta);
        buf.put_u64_le(*updates);
    }
    buf.put_u32_le(checked_field_len(state.calibration.len()));
    for (features, slope) in &state.calibration {
        put_f32_slice(buf, features);
        buf.put_f32_le(*slope);
    }
    match state.seen_range {
        Some((lo, hi)) => {
            buf.put_u8(1);
            buf.put_f32_le(lo);
            buf.put_f32_le(hi);
        }
        None => buf.put_u8(0),
    }
    buf.put_u64_le(state.since_retrain);
}

fn get_predictor_state(buf: &mut Bytes) -> Result<SlopePredictorState, WireError> {
    let global = get_f32_vec(buf)?;
    let personal_count = get_len(buf)?;
    let mut personal = Vec::with_capacity(personal_count);
    for _ in 0..personal_count {
        let model = get_string(buf)?;
        let theta = get_f32_vec(buf)?;
        need(buf, 8)?;
        personal.push((model, theta, buf.get_u64_le()));
    }
    let calibration_count = get_len(buf)?;
    let mut calibration = Vec::with_capacity(calibration_count);
    for _ in 0..calibration_count {
        let features = get_f32_vec(buf)?;
        need(buf, 4)?;
        calibration.push((features, buf.get_f32_le()));
    }
    need(buf, 1)?;
    let seen_range = match buf.get_u8() {
        0 => None,
        1 => {
            need(buf, 8)?;
            Some((buf.get_f32_le(), buf.get_f32_le()))
        }
        other => return Err(WireError::LengthOutOfBounds(other as usize)),
    };
    need(buf, 8)?;
    let since_retrain = buf.get_u64_le();
    Ok(SlopePredictorState {
        global,
        personal,
        calibration,
        seen_range,
        since_retrain,
    })
}

fn put_task_table_state(buf: &mut BytesMut, state: &TaskTableState) {
    buf.put_u64_le(state.next_id);
    buf.put_u32_le(checked_field_len(state.outstanding.len()));
    for &(id, worker, issued, deadline) in &state.outstanding {
        buf.put_u64_le(id);
        buf.put_u64_le(worker);
        buf.put_u64_le(issued);
        buf.put_u64_le(deadline);
    }
    put_u64_slice(buf, &state.completed);
    put_u64_slice(buf, &state.expired);
}

fn get_task_table_state(buf: &mut Bytes) -> Result<TaskTableState, WireError> {
    need(buf, 8)?;
    let next_id = buf.get_u64_le();
    let outstanding_count = get_len(buf)?;
    need(buf, outstanding_count.saturating_mul(4 * 8))?;
    let outstanding = (0..outstanding_count)
        .map(|_| {
            (
                buf.get_u64_le(),
                buf.get_u64_le(),
                buf.get_u64_le(),
                buf.get_u64_le(),
            )
        })
        .collect();
    let completed = get_u64_vec(buf)?;
    let expired = get_u64_vec(buf)?;
    Ok(TaskTableState {
        next_id,
        outstanding,
        completed,
        expired,
    })
}

/// Encodes a [`FleetServerState`] checkpoint into bytes.
///
/// # Panics
///
/// Panics if a variable-length field exceeds
/// [`MAX_FIELD_LEN`](crate::wire::MAX_FIELD_LEN); such a checkpoint could
/// never be decoded.
pub fn encode_checkpoint(state: &FleetServerState) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(CHECKPOINT_VERSION);
    put_server_state(&mut buf, &state.parameter_server);
    put_predictor_state(&mut buf, &state.iprof.latency);
    put_predictor_state(&mut buf, &state.iprof.energy);
    for counter in [
        state.controller.accepted,
        state.controller.rejected_size,
        state.controller.rejected_similarity,
        state.controller.rejected_overload,
    ] {
        buf.put_u64_le(counter);
    }
    put_task_table_state(&mut buf, &state.tasks);
    buf.put_u32_le(checked_field_len(state.device_models.len()));
    for (worker, model) in &state.device_models {
        buf.put_u64_le(*worker);
        put_str(&mut buf, model);
    }
    buf.freeze()
}

/// Decodes a checkpoint produced by [`encode_checkpoint`].
///
/// # Errors
///
/// Returns a [`WireError`] when the buffer is truncated, has an unknown
/// version byte, or contains malformed fields.
pub fn decode_checkpoint(mut buf: Bytes) -> Result<FleetServerState, WireError> {
    need(&buf, 1)?;
    let version = buf.get_u8();
    if version != CHECKPOINT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let parameter_server = get_server_state(&mut buf)?;
    let latency = get_predictor_state(&mut buf)?;
    let energy = get_predictor_state(&mut buf)?;
    need(&buf, 4 * 8)?;
    let controller = crate::controller::ControllerCounters {
        accepted: buf.get_u64_le(),
        rejected_size: buf.get_u64_le(),
        rejected_similarity: buf.get_u64_le(),
        rejected_overload: buf.get_u64_le(),
    };
    let tasks = get_task_table_state(&mut buf)?;
    let device_count = get_len(&mut buf)?;
    let mut device_models = Vec::with_capacity(device_count);
    for _ in 0..device_count {
        need(&buf, 8)?;
        let worker = buf.get_u64_le();
        device_models.push((worker, get_string(&mut buf)?));
    }
    Ok(FleetServerState {
        parameter_server,
        iprof: IProfState { latency, energy },
        controller,
        tasks,
        device_models,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerCounters;

    fn sample_state() -> FleetServerState {
        FleetServerState {
            parameter_server: ParameterServerState {
                parameters: vec![0.5, -1.25, 3.0],
                shard_pending: vec![vec![vec![0.1, 0.2]], vec![], vec![vec![-0.5]]],
                shard_clocks: vec![4, 0, 7],
                shard_applied: vec![2, 0, 3],
                pending_count: 1,
                clock: 11,
                updates_received: 12,
                last_shard_staleness: vec![1, 0, 2],
                last_shard_weights: vec![0.9, 1.0, 0.4],
                aggregator: AggregatorState {
                    staleness_values: vec![0, 1, 1, 2],
                    label_counts: vec![5, 0, 9],
                },
            },
            iprof: IProfState {
                latency: SlopePredictorState {
                    global: vec![0.01, 0.02, 0.0, 0.0, 0.0, 0.1],
                    personal: vec![
                        ("pixel-3".into(), vec![0.5; 6], 3),
                        ("s10".into(), vec![-0.25; 6], 1),
                    ],
                    calibration: vec![(vec![1.0; 6], 0.07)],
                    seen_range: Some((0.01, 0.4)),
                    since_retrain: 17,
                },
                energy: SlopePredictorState {
                    global: vec![0.3; 6],
                    personal: vec![],
                    calibration: vec![],
                    seen_range: None,
                    since_retrain: 0,
                },
            },
            controller: ControllerCounters {
                accepted: 40,
                rejected_size: 3,
                rejected_similarity: 2,
                rejected_overload: 5,
            },
            tasks: TaskTableState {
                next_id: 9,
                outstanding: vec![(7, 2, 10, 16), (8, 4, 11, 17)],
                completed: vec![0, 1, 2, 3, 5],
                expired: vec![4, 6],
            },
            device_models: vec![(2, "pixel-3".into()), (4, "s10".into())],
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let state = sample_state();
        let decoded = decode_checkpoint(encode_checkpoint(&state)).expect("roundtrip");
        assert_eq!(decoded, state);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let state = FleetServerState {
            parameter_server: ParameterServerState {
                parameters: vec![0.0],
                shard_pending: vec![vec![]],
                shard_clocks: vec![0],
                shard_applied: vec![0],
                pending_count: 0,
                clock: 0,
                updates_received: 0,
                last_shard_staleness: vec![0],
                last_shard_weights: vec![1.0],
                aggregator: AggregatorState::default(),
            },
            iprof: IProfState::default(),
            controller: ControllerCounters::default(),
            tasks: TaskTableState::default(),
            device_models: vec![],
        };
        let decoded = decode_checkpoint(encode_checkpoint(&state)).expect("roundtrip");
        assert_eq!(decoded, state);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut raw = encode_checkpoint(&sample_state()).to_vec();
        raw[0] = 99;
        assert_eq!(
            decode_checkpoint(Bytes::from(raw)),
            Err(WireError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn truncation_errors_at_every_offset() {
        let encoded = encode_checkpoint(&sample_state());
        for len in 0..encoded.len() {
            let truncated = encoded.slice(0..len);
            assert!(
                decode_checkpoint(truncated).is_err(),
                "prefix of length {len} decoded successfully"
            );
        }
    }

    #[test]
    fn bad_seen_range_flag_is_rejected() {
        let state = sample_state();
        let encoded = encode_checkpoint(&state).to_vec();
        // Locate the latency predictor's seen-range flag byte (value 1,
        // followed by the two range floats and since_retrain = 17).
        let needle_pos = encoded
            .windows(9)
            .position(|w| {
                w[0] == 1 && w[1..5] == 0.01f32.to_le_bytes() && w[5..9] == 0.4f32.to_le_bytes()
            })
            .expect("seen-range flag present");
        let mut raw = encoded;
        raw[needle_pos] = 7;
        assert_eq!(
            decode_checkpoint(Bytes::from(raw)),
            Err(WireError::LengthOutOfBounds(7))
        );
    }
}
