//! End-to-end harness smoke: a small open-loop run over a real UDS
//! transport server, with one shared recorder on both sides of the wire.

use fleet_loadgen::{
    build_fleet, drive, load_entry, model_parameters, DriveOptions, FleetShape, Schedule,
    WorkloadSpec,
};
use fleet_server::{FleetServer, FleetServerConfig};
use fleet_telemetry::{Counter, Latency, Recorder, ResourceUsage, TelemetryHandle, TelemetrySink};
use fleet_transport::{Endpoint, TransportConfig, TransportServer};
use std::sync::Arc;

#[test]
fn small_fleet_load_runs_clean_and_reports() {
    let spec = WorkloadSpec {
        workers: 8,
        ops_per_worker: 2,
        seed: 9,
        ..WorkloadSpec::default()
    };
    let shape = FleetShape::default();
    let schedule = Schedule::generate(&spec).expect("spec is valid");
    let recorder: Arc<Recorder> = Arc::new(Recorder::new());

    let socket =
        std::env::temp_dir().join(format!("fleet-loadgen-{}-smoke.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let endpoint = Endpoint::uds(socket);
    let config = FleetServerConfig::builder()
        .num_classes(shape.num_classes)
        .shards(2)
        .aggregation_k(1)
        .lease_min_rounds(1 << 20)
        .build()
        .expect("server config is valid");
    let server = TransportServer::bind(
        &endpoint,
        FleetServer::new(model_parameters(&shape), config),
        TransportConfig::builder()
            .telemetry(TelemetryHandle::new(
                Arc::clone(&recorder) as Arc<dyn TelemetrySink>
            ))
            .build()
            .expect("transport config is valid"),
    )
    .expect("bind smoke socket");

    let fleet = build_fleet(&spec, &shape);
    assert_eq!(fleet.len(), spec.workers);
    let usage_before = ResourceUsage::capture();
    let started = recorder.now_ns();
    let stats = drive(
        &endpoint,
        &schedule,
        fleet,
        Arc::clone(&recorder) as Arc<dyn TelemetrySink>,
        &DriveOptions {
            connections: 3,
            time_scale: 0.0,
        },
    );
    let wall_ns = recorder.now_ns().saturating_sub(started);
    server.shutdown().expect("shutdown");

    // Every scheduled op made it to the wire and nothing broke.
    assert_eq!(stats.transport_errors, 0, "{stats:?}");
    assert_eq!(stats.requests, 16, "{stats:?}");
    assert_eq!(
        stats.assignments + stats.rejected_overloaded + stats.rejected_other,
        16
    );
    assert_eq!(stats.submits + stats.skipped_submits, 16);
    assert!(stats.applied > 0, "{stats:?}");

    // The shared recorder saw both sides of the exchange.
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.counters[Counter::Requests as usize], 16);
    assert_eq!(
        snapshot.counters[Counter::Results as usize],
        stats.submits,
        "server-side results must match driver-side submits"
    );
    assert!(snapshot.counters[Counter::ConnectionsOpened as usize] >= 3);
    let request = snapshot.latency[Latency::RequestExchange as usize].snapshot();
    assert_eq!(request.count, 16, "one request-exchange sample per request");
    assert!(request.p50 > 0 && request.p50 <= request.p99);
    let handled = snapshot.latency[Latency::HandleFrame as usize].snapshot();
    assert_eq!(
        handled.count, 32,
        "the server handled one frame per request and per submit"
    );

    // The report entry carries the frozen v2 fields.
    let entry = load_entry(
        "fleet_load/smoke",
        &schedule,
        &stats,
        &snapshot,
        &usage_before,
        wall_ns,
    );
    assert_eq!(entry.iterations, 16);
    for key in [
        "schedule_digest",
        "request_exchange_p99_ns",
        "submit_exchange_p999_ns",
        "handle_frame_p50_ns",
        "queue_depth_max",
        "shard_apply_rate_hz",
        "max_rss_bytes",
        "cpu_seconds",
        "requests",
        "retries",
    ] {
        assert!(
            entry.fields.iter().any(|(k, _)| k == key),
            "report entry is missing frozen field {key}"
        );
    }
}
